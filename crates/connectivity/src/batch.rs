//! Batch front-end for [`DynConnectivity`]: canonicalise, group and
//! deduplicate whole batches with the `dyntree_primitives` grouping
//! primitives before the tree layer sees a single operation.
//!
//! Batched insertion additionally runs a union-find pre-pass over the batch
//! itself: once earlier edges of the batch have united two endpoints, a later
//! edge between them is provably a cycle edge and skips the backend's
//! connectivity probe.  For batches past the
//! [`ParallelConfig`](dyntree_primitives::ParallelConfig) grain the pre-pass
//! runs **in parallel**: the batch is split into contiguous chunks, each
//! chunk builds its own sparse DSU (and, for backends with read-only
//! queries, probes the pre-batch forest via
//! [`SpanningBackend::connected_snapshot`]), and the sequential application
//! walk then consumes the per-chunk certificates.  Both certificates are
//! *sound* under the one property insert runs have — connectivity only ever
//! grows — so the outcomes are byte-identical to the sequential pre-pass at
//! every thread count and chunk split; see `DESIGN.md` §8.

use dyntree_primitives::hash::{FxHashMap, FxHashSet};

use dyntree_primitives::algebra::WeightOf;
use dyntree_primitives::ops::{BatchReport, EdgeKind, GraphError, GraphOp, OpOutcome};
use dyntree_primitives::remove_duplicates;
use dyntree_primitives::telemetry::{BatchTelemetry, Counter, Phase};
use rayon::prelude::*;

use crate::backend::SpanningBackend;
use crate::engine::DynConnectivity;
use crate::search::{canonical, search_replacement, OverlayAdj, OverlayDiffs, SearchScratch};
use crate::Vertex;

/// The [`GraphOp`] type a `DynConnectivity<B>` engine accepts: weights are
/// drawn from the backend's monoid.
pub type OpOf<B> = GraphOp<WeightOf<<B as SpanningBackend>::Weights>>;

/// What the delete pre-pass concluded about one pair of a delete run,
/// against the pre-batch state (with in-run duplicate accounting).
///
/// Public only as test instrumentation for the classification proptests;
/// hidden from docs.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeleteClass {
    /// Self loop or out-of-range endpoint: rejected without touching state.
    Invalid(GraphError),
    /// Not live at its application moment (dead pre-batch, or an earlier op
    /// of the same run already deletes it): a benign skip.
    Missing,
    /// Live non-tree edge — drainable without the replacement search,
    /// unless an earlier in-run tree deletion promotes it first.
    NonTree,
    /// Live spanning-forest edge: must take the sequential HDT replacement
    /// search.
    Tree,
}

/// One pre-batch forest component's worth of certified deletions from a
/// delete run: the unit of independence for the search fan-out and the
/// rebuild escape hatch (DESIGN.md §10).
struct DeleteGroup {
    /// Canonical DSU root of the pre-batch component.
    root: Vertex,
    /// Run indices of the component's certified deletions, ascending.
    indices: Vec<usize>,
    /// How many of those are certified tree deletions (searches to run).
    tree_dels: usize,
    /// Vertex count of the pre-batch component.
    comp_size: usize,
    /// Whether the rebuild hatch takes this group wholesale.
    rebuild: bool,
}

/// The component partition of one delete run, plus the DSU that certified
/// it (the rebuild path reuses it to attribute surviving registry edges to
/// their component).
struct DeletePlan {
    /// Retained groups in canonical (first run index) order.
    groups: Vec<DeleteGroup>,
    /// Union-find over the endpoints of every pre-batch tree edge.
    dsu: SparseDsu,
    /// Whether the non-rebuild groups fan out over the pool (≥ 2 searcher
    /// groups on a multi-thread config).
    fan_out: bool,
}

/// What one fanned-out search group produced on a pool worker, ready to
/// install wholesale in canonical group order.
struct GroupRun {
    /// `(run index, outcome)` per certified deletion, in run order.
    outcomes: Vec<(usize, OpOutcome)>,
    /// Touched vertex states and edge-registry deltas from the overlay.
    diffs: OverlayDiffs,
    /// Backend mutations in op order: `(is_link, u, v)`.
    backend_ops: Vec<(bool, Vertex, Vertex)>,
    /// Component splits the group's deletions caused.
    splits: usize,
}

impl<B: SpanningBackend> DynConnectivity<B> {
    /// Applies a batch of edge insertions.  Self loops and duplicates (within
    /// the batch or with live edges) are skipped.  Returns the number of
    /// edges actually inserted.
    pub fn batch_insert(&mut self, edges: &[(Vertex, Vertex)]) -> usize {
        let batch = normalize(edges, self.len());
        let mut applied = 0;
        // Union-find pre-pass: once earlier batch edges have united two
        // endpoints, a later edge between them is provably a cycle edge, so
        // it can be classified non-tree without a backend connectivity probe.
        // The DSU is sparse (keyed on batch endpoints only), so the pre-pass
        // costs O(|batch| α) regardless of the graph's vertex count.  Large
        // batches compute per-chunk certificates in parallel first.
        let known = self.plan_insert_pairs(&batch);
        let _walk_span = self.telemetry().span(Phase::InsertWalk);
        let mut dsu = SparseDsu::default();
        for (i, &(u, v)) in batch.iter().enumerate() {
            let certified = known.as_deref().is_some_and(|k| k[i]);
            let inserted = if certified || dsu.same(u, v) {
                self.telemetry().incr(if certified {
                    Counter::InsertCertificatesUsed
                } else {
                    Counter::InsertDsuHits
                });
                self.telemetry().incr(Counter::LiveProbesSaved);
                self.insert_nontree_edge(u, v)
            } else {
                self.insert_edge(u, v)
            };
            if inserted {
                applied += 1;
            }
            dsu.union(u, v);
        }
        applied
    }

    /// Parallel pre-pass over an insert batch: splits the pairs into
    /// contiguous chunks and computes, per edge, whether its endpoints are
    /// *provably already connected* at the moment the edge will be applied.
    ///
    /// Two sound certificates feed the flag:
    /// * **chunk-prefix DSU** — earlier edges *of the same chunk* united the
    ///   endpoints.  Those edges precede this one in the whole batch, and
    ///   every valid batch edge is live by the time later edges apply.
    /// * **snapshot probe** — the endpoints were connected in the pre-batch
    ///   forest ([`SpanningBackend::connected_snapshot`]).  Insert runs only
    ///   ever merge components, so pre-batch connectivity persists.
    ///
    /// `false` merely means "no cheap proof": the sequential walk falls back
    /// to its own prefix DSU and, lastly, a live backend probe.  Outcomes
    /// are therefore byte-identical whichever certificates fire, which is
    /// what makes results independent of thread count and chunk boundaries.
    ///
    /// Returns `None` (purely sequential classification) below the
    /// configured grain, on a 1-thread pool, or for backends without
    /// snapshot probes ([`SpanningBackend::SNAPSHOT_QUERIES`]): the
    /// sequential walk's own prefix DSU subsumes every chunk-prefix
    /// certificate, so for those backends the fan-out could never save a
    /// live probe.
    fn plan_insert_pairs(&self, pairs: &[(Vertex, Vertex)]) -> Option<Vec<bool>> {
        if !B::SNAPSHOT_QUERIES || !self.par.worth(pairs.len()) {
            return None;
        }
        let chunks = self.par.chunks_for(pairs.len());
        if chunks <= 1 {
            return None;
        }
        let _pre_pass_span = self.telemetry().span(Phase::InsertPrePass);
        let n = self.len();
        let backend = self.backend();
        let ranges = dyntree_primitives::chunk_ranges(pairs.len(), chunks);
        // per chunk: (certificates, snapshot probes issued, certificates set)
        let parts: Vec<(Vec<bool>, u64, u64)> = ranges
            .par_iter()
            .map(|&(lo, hi)| {
                let mut dsu = SparseDsu::default();
                let mut probes = 0u64;
                let mut issued = 0u64;
                let flags = pairs[lo..hi]
                    .iter()
                    .map(|&(u, v)| {
                        if u == v || u >= n || v >= n {
                            return false;
                        }
                        let known = if dsu.same(u, v) {
                            true
                        } else {
                            probes += 1;
                            backend.connected_snapshot(u, v).unwrap_or(false)
                        };
                        dsu.union(u, v);
                        issued += u64::from(known);
                        known
                    })
                    .collect();
                (flags, probes, issued)
            })
            .collect();
        let mut flags = Vec::with_capacity(pairs.len());
        for (chunk_flags, probes, issued) in parts {
            self.telemetry().add(Counter::SnapshotProbes, probes);
            self.telemetry()
                .add(Counter::InsertCertificatesIssued, issued);
            flags.extend(chunk_flags);
        }
        Some(flags)
    }

    /// Applies a batch of edge deletions.  Returns the number of edges
    /// actually removed.
    ///
    /// Runs past the [`ParallelConfig::delete_grain`](dyntree_primitives::ParallelConfig::delete_grain)
    /// take the same classification pre-pass + non-tree drain as `apply`'s
    /// consecutive delete runs; the removals performed are **defined** to
    /// equal deleting the normalized batch one edge at a time.
    pub fn batch_delete(&mut self, edges: &[(Vertex, Vertex)]) -> usize {
        let batch = normalize(edges, self.len());
        let mut applied = 0;
        self.apply_delete_pairs(&batch, |outcome| applied += outcome.is_applied() as usize);
        applied
    }

    /// Applies one run of edge deletions in order, reporting one
    /// [`OpOutcome`] per pair — the shared core of `apply`'s consecutive
    /// `DeleteEdge` runs and [`batch_delete`](Self::batch_delete).
    ///
    /// Below the [`ParallelConfig::delete_grain`](dyntree_primitives::ParallelConfig::delete_grain) (or for backends without
    /// read-only snapshot probes) this is the plain sequential walk.  Past
    /// it, a chunked **classification pre-pass**
    /// ([`classify_delete_pairs`](Self::classify_delete_pairs)) labels every
    /// pair missing / non-tree / tree against the pre-batch forest, and the
    /// walk then *drains* certified non-tree deletions — record removal now,
    /// adjacency mirrors in one grouped parallel flush — while every
    /// tree-edge deletion still runs the sequential HDT replacement search
    /// in canonical order.  Outcomes and end state are byte-identical to the
    /// sequential walk at every thread count and chunk split; `DESIGN.md` §8
    /// gives the soundness argument (non-tree drains commute; promotions are
    /// the one way a certificate can go stale, and they are tracked
    /// exactly).
    fn apply_delete_pairs(
        &mut self,
        pairs: &[(Vertex, Vertex)],
        mut record: impl FnMut(OpOutcome),
    ) {
        let chunks = self.par.chunks_for(pairs.len());
        // The bulk path fires for chunkable multi-thread runs as before, and
        // additionally for any run past the delete grain when the rebuild
        // hatch is on — the hatch pays off even on a 1-thread pool.
        let bulk = B::SNAPSHOT_QUERIES
            && ((self.par.worth_delete(pairs.len()) && chunks > 1)
                || (self.par.rebuild_enabled() && pairs.len() >= self.par.delete_grain));
        if !bulk {
            let _walk_span = self.telemetry().span(Phase::DeleteWalk);
            for &(u, v) in pairs {
                record(self.delete_outcome(u, v));
            }
            return;
        }
        let classes = self.classify_delete_pairs(pairs, chunks);
        let _walk_span = self.telemetry().span(Phase::DeleteWalk);
        // Component grouping: certified deletions in distinct pre-batch
        // forest components are independent.  Groups taken by the rebuild
        // hatch or the search fan-out land their outcomes in `slots`; the
        // sequential walk below records them in run order and handles
        // everything else exactly as before.
        let mut slots: Vec<Option<OpOutcome>> = vec![None; pairs.len()];
        if let Some(mut plan) = self.plan_delete_groups(pairs, &classes) {
            self.execute_rebuild_groups(pairs, &classes, &mut plan, &mut slots);
            self.execute_search_groups(pairs, &classes, &plan, &mut slots);
        }
        // Certified non-tree removals of the current drain segment, in run
        // order; flushed (grouped, parallel) before any tree deletion runs.
        let mut drain: Vec<(Vertex, Vertex, usize)> = Vec::new();
        // Non-tree edges promoted into the forest by this run's replacement
        // searches: the only certificates that can go stale, tracked exactly.
        let mut promoted: FxHashSet<(Vertex, Vertex)> = FxHashSet::default();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if let Some(outcome) = slots[i].take() {
                record(outcome);
                continue;
            }
            match classes[i] {
                DeleteClass::Invalid(e) => record(OpOutcome::from_error(e)),
                DeleteClass::Missing => record(OpOutcome::from_error(GraphError::MissingEdge {
                    u: u.min(v),
                    v: u.max(v),
                })),
                DeleteClass::NonTree if !promoted.contains(&(u.min(v), u.max(v))) => {
                    self.telemetry().incr(Counter::DeleteNonTreeDrained);
                    let level = self.take_certified_nontree_record(u, v);
                    drain.push((u, v, level));
                    record(OpOutcome::EdgeDeleted {
                        kind: EdgeKind::NonTree,
                        split: false,
                    });
                }
                // A tree edge — or a non-tree certificate invalidated by an
                // earlier in-run promotion.  The replacement search must see
                // current adjacency, so the pending drain flushes first.
                class @ (DeleteClass::Tree | DeleteClass::NonTree) => {
                    if class == DeleteClass::NonTree {
                        self.telemetry().incr(Counter::DeleteCertificatesStale);
                    }
                    self.flush_nontree_drain(&mut drain);
                    record(match self.try_delete_edge_traced(u, v) {
                        Ok((outcome, promo)) => {
                            if let Some(edge) = promo {
                                promoted.insert(edge);
                            }
                            OpOutcome::EdgeDeleted {
                                kind: outcome.kind,
                                split: outcome.split,
                            }
                        }
                        Err(e) => OpOutcome::from_error(e),
                    });
                }
            }
        }
        self.flush_nontree_drain(&mut drain);
    }

    /// Partitions a classified delete run by pre-batch forest component and
    /// decides, per component, between the rebuild hatch and the search
    /// fan-out.  Returns `None` when nothing is worth grouping — the
    /// sequential walk then handles every op, exactly as before.
    ///
    /// The independence certificate: a replacement search only ever reads
    /// and writes inside its deletion's pre-batch component, and certified
    /// deletions in *distinct* components therefore commute with each other
    /// (DESIGN.md §10).  The partition comes from a sparse union-find over
    /// the endpoints of every live tree edge — the spanning forest covers
    /// every component of size ≥ 2, and every certified deletion's endpoints
    /// carry at least one tree edge, so every grouped endpoint is a DSU key.
    fn plan_delete_groups(
        &self,
        pairs: &[(Vertex, Vertex)],
        classes: &[DeleteClass],
    ) -> Option<DeletePlan> {
        if !self.par.rebuild_enabled() && self.par.effective_threads() <= 1 {
            return None;
        }
        if !classes.contains(&DeleteClass::Tree) {
            // No searches to fan out and nothing the hatch could save.
            return None;
        }
        let mut dsu = SparseDsu::default();
        for (&(a, b), info) in &self.edges {
            if info.tree {
                dsu.union(a, b);
            }
        }
        // Component vertex counts: every vertex of a size ≥ 2 component has
        // a tree edge, so the DSU key set is exactly the non-isolated
        // vertex set.
        let keys: Vec<Vertex> = dsu.parent.keys().copied().collect();
        let mut sizes: FxHashMap<Vertex, usize> = FxHashMap::default();
        for k in keys {
            *sizes.entry(dsu.find(k)).or_insert(0) += 1;
        }
        let mut group_of: FxHashMap<Vertex, usize> = FxHashMap::default();
        let mut groups: Vec<DeleteGroup> = Vec::new();
        for (i, &(u, _)) in pairs.iter().enumerate() {
            if !matches!(classes[i], DeleteClass::Tree | DeleteClass::NonTree) {
                continue;
            }
            let root = dsu.find(u);
            let gi = *group_of.entry(root).or_insert_with(|| {
                groups.push(DeleteGroup {
                    root,
                    indices: Vec::new(),
                    tree_dels: 0,
                    comp_size: sizes.get(&root).copied().unwrap_or(0),
                    rebuild: false,
                });
                groups.len() - 1
            });
            groups[gi].indices.push(i);
            groups[gi].tree_dels += usize::from(classes[i] == DeleteClass::Tree);
        }
        for g in &mut groups {
            g.rebuild = self.par.rebuild_worth(g.tree_dels, g.comp_size);
        }
        // Fan-out needs at least two searcher groups to overlap; a lone
        // searcher group stays on the (cheaper) sequential walk.
        let searchers = groups
            .iter()
            .filter(|g| !g.rebuild && g.tree_dels > 0)
            .count();
        let fan_out = searchers >= 2 && self.par.effective_threads() > 1;
        groups.retain(|g| g.rebuild || (fan_out && g.tree_dels > 0));
        if groups.is_empty() {
            return None;
        }
        Some(DeletePlan {
            groups,
            dsu,
            fan_out,
        })
    }

    /// Executes the rebuild-hatch groups of a delete plan: removes every
    /// certified deletion wholesale, then rebuilds each component's spanning
    /// forest from the surviving registry edges with a sparse union-find
    /// (surviving non-tree edges are reset to level 0, which re-establishes
    /// the HDT level invariant the later replacement searches depend on),
    /// and finally attributes per-op split flags by a **reverse replay** of
    /// the group's deletions (checking `(u, v)` connectivity before
    /// re-unioning it examines exactly the post-op live graph, so the split
    /// flags are identical to the sequential walk's).  This skips the
    /// replacement searches entirely — the relaxed canonical-outcome
    /// contract (DESIGN.md §10): tree membership, edge levels, and the
    /// search counters may diverge from the sequential walk; connectivity,
    /// the component partition, split flags and the live edge set do not.
    fn execute_rebuild_groups(
        &mut self,
        pairs: &[(Vertex, Vertex)],
        classes: &[DeleteClass],
        plan: &mut DeletePlan,
        slots: &mut [Option<OpOutcome>],
    ) {
        if !plan.groups.iter().any(|g| g.rebuild) {
            return;
        }
        let _rebuild_span = self.telemetry().span(Phase::Rebuild);
        // Remove every certified deletion of every rebuild group.  No
        // searches run here, so no certificate can go stale: the registry
        // still agrees with the pre-pass classes.
        for g in plan.groups.iter().filter(|g| g.rebuild) {
            for &i in &g.indices {
                let (u, v) = pairs[i];
                let info = self
                    .edges
                    .remove(&canonical(u, v))
                    .expect("certified delete of a dead edge");
                if info.tree {
                    let removed = self.adj.tree_remove(u, v);
                    debug_assert_eq!(removed, Some(info.level));
                    let cut = self.backend.cut(u, v);
                    debug_assert!(cut, "backend rejected cutting tree edge ({u},{v})");
                } else {
                    self.tel.incr(Counter::DeleteNonTreeDrained);
                    let removed = self.adj.nontree_remove(u, v, info.level);
                    debug_assert!(removed, "drained non-tree edge ({u},{v}) not in adjacency");
                }
            }
        }
        // One shared scan attributes every surviving registry edge to its
        // rebuild group (survivors of other components are skipped).
        let mut group_of_root: FxHashMap<Vertex, usize> = FxHashMap::default();
        for (gi, g) in plan.groups.iter().enumerate() {
            if g.rebuild {
                group_of_root.insert(g.root, gi);
            }
        }
        let mut survivors: Vec<Vec<(Vertex, Vertex, usize, bool)>> =
            vec![Vec::new(); plan.groups.len()];
        for (&(a, b), info) in &self.edges {
            if let Some(&gi) = group_of_root.get(&plan.dsu.find(a)) {
                survivors[gi].push((a, b, info.level, info.tree));
            }
        }
        for (gi, g) in plan.groups.iter().enumerate() {
            if !g.rebuild {
                continue;
            }
            // Deterministic rebuild order regardless of registry hashing:
            // canonical (min, max) keys are unique, so the sort is total.
            let mut edges = std::mem::take(&mut survivors[gi]);
            edges.sort_unstable();
            let mut forest = SparseDsu::default();
            for &(a, b, _, tree) in &edges {
                if tree {
                    debug_assert!(!forest.same(a, b), "surviving spanning forest has a cycle");
                    forest.union(a, b);
                }
            }
            // Promote non-tree survivors until the component's spanning
            // forest is maximal again, resetting every surviving non-tree
            // edge — promoted or not — to level 0.  Keeping higher levels
            // would break the HDT level invariant (a level-i non-tree edge
            // must have its endpoints connected by tree edges of level ≥ i):
            // the forced tree survivors plus the promotions give no ≥ i
            // path guarantee, and a later replacement search for a
            // lower-level tree edge never scans the stranded bucket — a
            // false split with the edge still live.  Tree survivors keep
            // their levels: F_i components only shrink here, and every
            // non-tree edge they must cover now sits at level 0.
            for &(a, b, level, tree) in &edges {
                if tree {
                    continue;
                }
                if !forest.same(a, b) {
                    let removed = self.adj.nontree_remove(a, b, level);
                    debug_assert!(
                        removed,
                        "surviving non-tree edge ({a},{b}) not in adjacency"
                    );
                    self.adj.tree_insert(a, b, 0);
                    let info = self.edges.get_mut(&(a, b)).expect("surviving edge");
                    info.tree = true;
                    info.level = 0;
                    let linked = self.backend.link(a, b);
                    debug_assert!(linked, "backend rejected rebuild link ({a},{b})");
                } else if level != 0 {
                    let removed = self.adj.nontree_remove(a, b, level);
                    debug_assert!(
                        removed,
                        "surviving non-tree edge ({a},{b}) not in adjacency"
                    );
                    self.adj.nontree_insert(a, b, 0);
                    self.edges.get_mut(&(a, b)).expect("surviving edge").level = 0;
                }
                forest.union(a, b);
            }
            // Reverse replay: walking the group's deletions last-to-first,
            // `!same(u, v)` *before* re-unioning is connectivity in the live
            // graph right after op `i` ran — the sequential split flag.
            let mut splits = 0u64;
            for &i in g.indices.iter().rev() {
                let (u, v) = pairs[i];
                let split = !forest.same(u, v);
                forest.union(u, v);
                splits += u64::from(split);
                let kind = if classes[i] == DeleteClass::Tree {
                    EdgeKind::Tree
                } else {
                    EdgeKind::NonTree
                };
                slots[i] = Some(OpOutcome::EdgeDeleted { kind, split });
            }
            self.components += splits as usize;
            self.tel.add(Counter::ComponentSplits, splits);
            self.tel.incr(Counter::RebuildsTaken);
        }
    }

    /// Fans the plan's searcher groups out over the pool: each worker runs
    /// its groups' deletions — replacement searches included — against a
    /// copy-on-touch [`OverlayAdj`] of the shared engine, with its own mark
    /// array and scratch arena, and the finished diffs install sequentially
    /// in canonical group order.  Because the groups live in distinct
    /// pre-batch components, the installed state and every outcome are
    /// byte-identical to the sequential walk at every fan-out width; the
    /// workers share the engine's telemetry handle (counters only — no
    /// phase spans, whose overlapping wall times would break the profile's
    /// nesting), so the deterministic counters are also preserved exactly.
    fn execute_search_groups(
        &mut self,
        pairs: &[(Vertex, Vertex)],
        classes: &[DeleteClass],
        plan: &DeletePlan,
        slots: &mut [Option<OpOutcome>],
    ) {
        if !plan.fan_out {
            return;
        }
        let _fan_span = self.telemetry().span(Phase::SearchFanOut);
        let runs: Vec<GroupRun> = {
            let searchers: Vec<&DeleteGroup> = plan.groups.iter().filter(|g| !g.rebuild).collect();
            debug_assert!(searchers.len() >= 2, "fan-out planned for < 2 groups");
            let workers = self.par.effective_threads().min(searchers.len());
            let ranges = dyntree_primitives::chunk_ranges(searchers.len(), workers);
            let n = self.len();
            let this: &Self = self;
            let parts: Vec<Vec<GroupRun>> = ranges
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut mark = vec![0u64; n];
                    let mut stamp = 0u64;
                    let mut scratch = SearchScratch::default();
                    let mut out = Vec::with_capacity(hi - lo);
                    for g in &searchers[lo..hi] {
                        out.push(this.run_search_group(
                            pairs,
                            classes,
                            g,
                            &mut mark,
                            &mut stamp,
                            &mut scratch,
                        ));
                    }
                    out
                })
                .collect();
            parts.into_iter().flatten().collect()
        };
        // Install in canonical group order.  The groups touch disjoint
        // vertices and edges, so any order yields the same state; canonical
        // order keeps the backend's op sequence deterministic too.
        for run in runs {
            for (v, state) in run.diffs.vertices {
                self.adj.set_vertex(v, state);
            }
            for (key, delta) in run.diffs.edges {
                match delta {
                    Some(info) => {
                        self.edges.insert(key, info);
                    }
                    None => {
                        self.edges.remove(&key);
                    }
                }
            }
            for (is_link, a, b) in run.backend_ops {
                let ok = if is_link {
                    self.backend.link(a, b)
                } else {
                    self.backend.cut(a, b)
                };
                debug_assert!(ok, "backend rejected fanned-out op ({a},{b})");
            }
            self.components += run.splits;
            for (i, outcome) in run.outcomes {
                slots[i] = Some(outcome);
            }
        }
    }

    /// Runs one searcher group's certified deletions, in run order, against
    /// an overlay of the shared engine — the pool-worker body of
    /// [`execute_search_groups`](Self::execute_search_groups).  Mirrors the
    /// sequential walk's per-class logic exactly (drained non-tree removals,
    /// stale-certificate detection via the group-local promoted set, full
    /// replacement searches for tree deletions), so outcomes and counters
    /// are byte-identical to running the same ops in place.
    #[allow(clippy::too_many_arguments)]
    fn run_search_group(
        &self,
        pairs: &[(Vertex, Vertex)],
        classes: &[DeleteClass],
        group: &DeleteGroup,
        mark: &mut [u64],
        stamp: &mut u64,
        scratch: &mut SearchScratch,
    ) -> GroupRun {
        let mut overlay = OverlayAdj::new(&self.adj, &self.edges);
        let mut outcomes = Vec::with_capacity(group.indices.len());
        let mut backend_ops: Vec<(bool, Vertex, Vertex)> = Vec::new();
        let mut promoted: FxHashSet<(Vertex, Vertex)> = FxHashSet::default();
        let mut splits = 0usize;
        let mut searches = 0u64;
        for &i in &group.indices {
            let (u, v) = pairs[i];
            let outcome = match classes[i] {
                DeleteClass::NonTree if !promoted.contains(&canonical(u, v)) => {
                    self.tel.incr(Counter::DeleteNonTreeDrained);
                    let info = overlay.remove_edge_record(u, v);
                    debug_assert!(
                        !info.tree,
                        "certified non-tree edge ({u},{v}) is a tree edge"
                    );
                    overlay.nontree_remove(u, v, info.level);
                    OpOutcome::EdgeDeleted {
                        kind: EdgeKind::NonTree,
                        split: false,
                    }
                }
                class @ (DeleteClass::Tree | DeleteClass::NonTree) => {
                    if class == DeleteClass::NonTree {
                        self.tel.incr(Counter::DeleteCertificatesStale);
                    }
                    let info = overlay.remove_edge_record(u, v);
                    debug_assert!(info.tree, "grouped tree delete of a non-tree edge");
                    let removed = overlay.tree_remove(u, v);
                    debug_assert_eq!(removed, Some(info.level));
                    backend_ops.push((false, u, v));
                    searches += 1;
                    let promo = search_replacement(
                        &mut overlay,
                        mark,
                        stamp,
                        scratch,
                        &self.tel,
                        false,
                        self.level_cap,
                        u,
                        v,
                        info.level,
                    );
                    let split = promo.is_none();
                    if let Some((x, y)) = promo {
                        backend_ops.push((true, x, y));
                        promoted.insert((x, y));
                    } else {
                        splits += 1;
                        self.tel.incr(Counter::ComponentSplits);
                    }
                    OpOutcome::EdgeDeleted {
                        kind: EdgeKind::Tree,
                        split,
                    }
                }
                _ => unreachable!("only certified deletions are grouped"),
            };
            outcomes.push((i, outcome));
        }
        self.tel.add(Counter::SearchesFannedOut, searches);
        GroupRun {
            outcomes,
            diffs: overlay.into_diffs(),
            backend_ops,
            splits,
        }
    }

    /// One delete through the typed single-op surface, as an [`OpOutcome`].
    fn delete_outcome(&mut self, u: Vertex, v: Vertex) -> OpOutcome {
        match self.try_delete_edge(u, v) {
            Ok(d) => OpOutcome::EdgeDeleted {
                kind: d.kind,
                split: d.split,
            },
            Err(e) => OpOutcome::from_error(e),
        }
    }

    /// Chunked classification pre-pass over a delete run: labels every pair
    /// against the **pre-batch** state — endpoint validity, liveness from
    /// the engine's edge registry, and tree-ness from the backend's
    /// read-only [`SpanningBackend::edge_kind_snapshot`] probe — then runs a
    /// sequential in-run duplicate fixup (a later occurrence of an edge the
    /// run already deletes is [`DeleteClass::Missing`]).  Chunks are probed
    /// on the pool; the result is independent of the chunk split, which the
    /// classification proptests pin down.
    ///
    /// Public only as test instrumentation (hidden from docs): the
    /// differential proptests compare chunked against sequential
    /// classification at arbitrary splits.
    #[doc(hidden)]
    pub fn classify_delete_pairs(
        &self,
        pairs: &[(Vertex, Vertex)],
        chunks: usize,
    ) -> Vec<DeleteClass> {
        let _classify_span = self.telemetry().span(Phase::DeleteClassify);
        let classify = |&(u, v): &(Vertex, Vertex)| self.classify_one_delete(u, v);
        let mut classes: Vec<DeleteClass> = if chunks <= 1 {
            pairs.iter().map(classify).collect()
        } else {
            let ranges = dyntree_primitives::chunk_ranges(pairs.len(), chunks);
            let parts: Vec<Vec<DeleteClass>> = ranges
                .par_iter()
                .map(|&(lo, hi)| pairs[lo..hi].iter().map(classify).collect())
                .collect();
            parts.concat()
        };
        // In-run duplicates: only the first occurrence of a live edge sees
        // the pre-batch state; every later one finds it already deleted.
        let mut deleted: FxHashSet<(Vertex, Vertex)> = FxHashSet::default();
        for (class, &(u, v)) in classes.iter_mut().zip(pairs) {
            if matches!(class, DeleteClass::NonTree | DeleteClass::Tree)
                && !deleted.insert((u.min(v), u.max(v)))
            {
                *class = DeleteClass::Missing;
            }
        }
        if self.telemetry().is_enabled() {
            let issued = classes
                .iter()
                .filter(|c| matches!(c, DeleteClass::NonTree))
                .count() as u64;
            self.telemetry()
                .add(Counter::DeleteCertificatesIssued, issued);
        }
        classes
    }

    /// Classifies a single pair against the pre-batch state (no duplicate
    /// accounting — [`classify_delete_pairs`](Self::classify_delete_pairs)
    /// layers that on top).  Validation order matches `check_edge`, so the
    /// drained path reports byte-identical errors to the single-op path.
    fn classify_one_delete(&self, u: Vertex, v: Vertex) -> DeleteClass {
        let n = self.len();
        if u == v {
            return DeleteClass::Invalid(GraphError::SelfLoop { v: u });
        }
        if u >= n || v >= n {
            let bad = if u >= n { u } else { v };
            return DeleteClass::Invalid(GraphError::VertexOutOfRange { v: bad, len: n });
        }
        match self.edge_info_snapshot(u, v) {
            None => DeleteClass::Missing,
            Some((_, tree)) => match self.backend().edge_kind_snapshot(u, v) {
                Some(kind) => {
                    debug_assert_eq!(
                        kind == EdgeKind::Tree,
                        tree,
                        "backend forest disagrees with the edge registry on ({u},{v})"
                    );
                    match kind {
                        EdgeKind::Tree => DeleteClass::Tree,
                        EdgeKind::NonTree => DeleteClass::NonTree,
                    }
                }
                // Unreachable when gated on SNAPSHOT_QUERIES; the registry
                // answers for backends that decline the probe (test hook).
                None if tree => DeleteClass::Tree,
                None => DeleteClass::NonTree,
            },
        }
    }

    /// Removes the drained non-tree edges' adjacency mirrors, grouped by
    /// endpoint.  Each touched vertex's level buckets are rebuilt by
    /// replaying that vertex's removals on a cloned bucket with the same
    /// order-preserving position-remove the per-op path uses — buckets are
    /// sorted by neighbour id (the flat layout's canonical order), so any
    /// removal sequence lands on the same sorted survivor set and per-vertex
    /// effects are disjoint: the final adjacency is byte-identical to
    /// one-at-a-time deletion at every thread count and chunk split.  Past
    /// the chunk grain the rebuild fans out over
    /// [`dyntree_primitives::chunk_ranges`] vertex groups.
    fn flush_nontree_drain(&mut self, drain: &mut Vec<(Vertex, Vertex, usize)>) {
        if drain.is_empty() {
            return;
        }
        let _drain_span = self.telemetry().span(Phase::NonTreeDrain);
        let chunks = self.par.chunks_for(drain.len());
        if chunks <= 1 {
            for &(u, v, level) in drain.iter() {
                let removed = self.adj_mut().nontree_remove(u, v, level);
                debug_assert!(removed, "drained non-tree edge ({u},{v}) not in adjacency");
            }
            drain.clear();
            return;
        }
        let mut by_vertex: FxHashMap<Vertex, Vec<(Vertex, usize)>> = FxHashMap::default();
        for &(u, v, level) in drain.iter() {
            by_vertex.entry(u).or_default().push((v, level));
            by_vertex.entry(v).or_default().push((u, level));
        }
        let mut verts: Vec<Vertex> = by_vertex.keys().copied().collect();
        verts.sort_unstable();
        // per worker chunk: one `(vertex, [(level, rebuilt bucket)])` entry
        // per touched vertex
        type RebuiltChunk = Vec<(Vertex, Vec<(usize, Vec<Vertex>)>)>;
        let rebuilt: Vec<RebuiltChunk> = {
            let adj = self.adj_ref();
            let ranges = dyntree_primitives::chunk_ranges(verts.len(), chunks.min(verts.len()));
            ranges
                .par_iter()
                .map(|&(lo, hi)| {
                    verts[lo..hi]
                        .iter()
                        .map(|&x| {
                            // evolving copies of x's touched level buckets
                            let mut touched: Vec<(usize, Vec<Vertex>)> = Vec::new();
                            for &(y, level) in &by_vertex[&x] {
                                let bucket = match touched.iter_mut().find(|(l, _)| *l == level) {
                                    Some((_, b)) => b,
                                    None => {
                                        touched.push((level, adj.nontree_neighbors_at(x, level)));
                                        &mut touched.last_mut().expect("just pushed").1
                                    }
                                };
                                let pos = bucket
                                    .iter()
                                    .position(|&w| w == y)
                                    .expect("drained non-tree edge in its bucket");
                                // order-preserving remove: the bucket stays
                                // sorted, which `nontree_set_bucket` requires
                                bucket.remove(pos);
                            }
                            (x, touched)
                        })
                        .collect()
                })
                .collect()
        };
        for (x, touched) in rebuilt.into_iter().flatten() {
            for (level, bucket) in touched {
                self.adj_mut().nontree_set_bucket(x, level, bucket);
            }
        }
        drain.clear();
    }

    /// Answers a batch of connectivity queries.
    pub fn batch_connected(&mut self, queries: &[(Vertex, Vertex)]) -> Vec<bool> {
        queries.iter().map(|&(u, v)| self.connected(u, v)).collect()
    }

    /// Applies a transaction of [`GraphOp`]s in submission order and reports
    /// per-op outcomes plus aggregate counters.
    ///
    /// Every op is validated at the engine boundary — nothing invalid ever
    /// reaches a backend, and nothing panics: self loops, out-of-range
    /// vertices and unweighted backends surface as
    /// [`Rejected`](OpOutcome::Rejected) outcomes, while duplicate inserts
    /// and missing deletes are benign [`Skipped`](OpOutcome::Skipped)
    /// no-ops, so replaying a batch is safe.  `AddVertices` grows the vertex
    /// set mid-batch, and later ops in the same batch may use the new ids.
    ///
    /// Consecutive runs of `InsertEdge` ops are applied in bulk through the
    /// same sparse union-find pre-pass as [`batch_insert`](Self::batch_insert):
    /// once earlier inserts of the run have united two endpoints, a later
    /// edge between them is classified non-tree without a backend
    /// connectivity probe.  Consecutive runs of `DeleteEdge` ops past the
    /// [`ParallelConfig::delete_grain`](dyntree_primitives::ParallelConfig::delete_grain) likewise take a chunked
    /// classification pre-pass and drain certified non-tree deletions in
    /// bulk ([`batch_delete`](Self::batch_delete) shares the machinery).
    /// The outcomes are exactly those of applying the ops one at a time.
    ///
    /// ```
    /// use dyntree_connectivity::UfoConnectivity;
    /// use dyntree_primitives::ops::GraphOp;
    ///
    /// let mut g = UfoConnectivity::new(0);
    /// let report = g.apply(&[
    ///     GraphOp::AddVertices(3),
    ///     GraphOp::InsertEdge(0, 1),
    ///     GraphOp::InsertEdge(0, 1), // duplicate: skipped
    ///     GraphOp::InsertEdge(2, 2), // self loop: rejected
    ///     GraphOp::SetWeight(1, 7),
    /// ]);
    /// assert_eq!((report.applied, report.skipped, report.rejected), (3, 1, 1));
    /// assert_eq!(report.vertices_after, 3);
    /// assert_eq!(report.components_after, 2);
    /// ```
    pub fn apply(&mut self, ops: &[OpOf<B>]) -> BatchReport {
        self.apply_with(ops, |_| {})
    }

    /// [`apply`](Self::apply) with a post-batch hook that runs *inside* the
    /// batch's `apply` phase span, after the ops execute but before the
    /// report is sealed.  The serving layer builds and publishes its
    /// snapshot here, so snapshot construction is charged to the same apply
    /// wall the phase tree reports (under its own `snapshot_build` child
    /// phase) instead of being invisible writer-side overhead.
    pub fn apply_with(&mut self, ops: &[OpOf<B>], after: impl FnOnce(&mut Self)) -> BatchReport {
        // With telemetry enabled, the report carries this batch's counter and
        // phase deltas (cumulative snapshot before vs after).
        let before = self.telemetry_snapshot();
        let mut report = BatchReport::new(self.len(), self.component_count());
        report.outcomes.reserve(ops.len());
        {
            let _apply_span = self.telemetry().span(Phase::Apply);
            self.apply_runs(ops, &mut report);
            self.version += 1;
            after(self);
        }
        report.close(self.len(), self.component_count());
        report.version = self.version;
        if let (Some(before), Some(now)) = (before, self.telemetry_snapshot()) {
            report.telemetry = Some(BatchTelemetry {
                delta: now.delta_since(&before),
            });
        }
        report
    }

    /// The run-splitting walk of [`Self::apply`], factored out so the
    /// `apply` phase span can scope exactly the op execution.
    fn apply_runs(&mut self, ops: &[OpOf<B>], report: &mut BatchReport) {
        let mut i = 0;
        while i < ops.len() {
            match ops[i] {
                GraphOp::InsertEdge(..) => {
                    let mut j = i;
                    while j < ops.len() && matches!(ops[j], GraphOp::InsertEdge(..)) {
                        j += 1;
                    }
                    self.apply_insert_run(&ops[i..j], report);
                    i = j;
                }
                GraphOp::DeleteEdge(..) => {
                    let mut j = i;
                    while j < ops.len() && matches!(ops[j], GraphOp::DeleteEdge(..)) {
                        j += 1;
                    }
                    self.apply_delete_run(&ops[i..j], report);
                    i = j;
                }
                GraphOp::AddVertices(count) => {
                    let first = self.len();
                    // an id-space overflow is a typed rejection, not a panic
                    report.record(match first.checked_add(count) {
                        Some(target) => {
                            self.ensure_vertices(target);
                            OpOutcome::VerticesAdded { first, count }
                        }
                        None => OpOutcome::Rejected(GraphError::VertexOutOfRange {
                            v: usize::MAX,
                            len: first,
                        }),
                    });
                    i += 1;
                }
                GraphOp::SetWeight(v, w) => {
                    report.record(match self.try_set_weight(v, w) {
                        Ok(()) => OpOutcome::WeightSet,
                        Err(e) => OpOutcome::from_error(e),
                    });
                    i += 1;
                }
                // The bulk applies run as singletons, like SetWeight: they
                // mutate weights sequentially in op order, so reports are
                // byte-identical at every thread count by construction.
                GraphOp::PathApply(u, v, delta) => {
                    report.record(match self.try_path_apply(u, v, delta) {
                        Ok(Some(count)) => OpOutcome::PathApplied { count },
                        Ok(None) => OpOutcome::from_error(GraphError::Disconnected { u, v }),
                        Err(e) => OpOutcome::from_error(e),
                    });
                    i += 1;
                }
                GraphOp::ComponentApply(v, delta) => {
                    report.record(match self.try_component_apply(v, delta) {
                        Ok(count) => OpOutcome::ComponentApplied { count },
                        Err(e) => OpOutcome::from_error(e),
                    });
                    i += 1;
                }
            }
        }
    }

    /// Applies one maximal run of consecutive `InsertEdge` ops with the
    /// sparse-DSU cycle-classification pre-pass, recording one outcome per
    /// op.  The DSU is seeded from the run itself: an edge is unioned once
    /// it is live (freshly applied or already present), so `same(u, v)`
    /// proves engine connectivity and the backend probe can be skipped.
    ///
    /// An `AddVertices` op can never sit inside a run, so `self.len()` is
    /// constant across it — which is what lets the parallel pre-pass
    /// ([`plan_insert_pairs`](Self::plan_insert_pairs)) validate endpoints
    /// and compute connectedness certificates chunk-by-chunk up front.
    fn apply_insert_run(&mut self, run: &[OpOf<B>], report: &mut BatchReport) {
        // Only materialize the pair list when the run can actually take the
        // parallel pre-pass — short runs (the common case in mixed streams)
        // and snapshot-less backends must not pay an allocation on the
        // engine's hottest entry point.
        let known = if B::SNAPSHOT_QUERIES && self.par.worth(run.len()) {
            let pairs: Vec<(Vertex, Vertex)> = run
                .iter()
                .map(|op| {
                    let &GraphOp::InsertEdge(u, v) = op else {
                        unreachable!("insert runs contain only InsertEdge ops");
                    };
                    (u, v)
                })
                .collect();
            self.plan_insert_pairs(&pairs)
        } else {
            None
        };
        let _walk_span = self.telemetry().span(Phase::InsertWalk);
        let mut dsu = SparseDsu::default();
        for (i, op) in run.iter().enumerate() {
            let &GraphOp::InsertEdge(u, v) = op else {
                unreachable!("insert runs contain only InsertEdge ops");
            };
            let outcome = if u == v {
                OpOutcome::from_error(GraphError::SelfLoop { v: u })
            } else if u >= self.len() || v >= self.len() {
                // same endpoint order as `check_edge`, so the bulk path
                // reports byte-identical errors to the single-op path
                let bad = if u >= self.len() { u } else { v };
                OpOutcome::from_error(GraphError::VertexOutOfRange {
                    v: bad,
                    len: self.len(),
                })
            } else if self.has_edge(u, v) {
                dsu.union(u, v);
                OpOutcome::from_error(GraphError::DuplicateEdge {
                    u: u.min(v),
                    v: u.max(v),
                })
            } else {
                let certified = known.as_deref().is_some_and(|k| k[i]);
                if certified || dsu.same(u, v) {
                    // Either certificate proves the endpoints are already
                    // connected, so this is a cycle edge — same conclusion
                    // the live probe below would reach, minus the probe.
                    self.telemetry().incr(if certified {
                        Counter::InsertCertificatesUsed
                    } else {
                        Counter::InsertDsuHits
                    });
                    self.telemetry().incr(Counter::LiveProbesSaved);
                    let inserted = self.insert_nontree_edge(u, v);
                    debug_assert!(inserted, "pre-validated non-tree insert rejected");
                    dsu.union(u, v);
                    OpOutcome::EdgeInserted {
                        kind: EdgeKind::NonTree,
                    }
                } else {
                    let kind = self
                        .try_insert_edge(u, v)
                        .expect("pre-validated insert rejected");
                    dsu.union(u, v);
                    OpOutcome::EdgeInserted { kind }
                }
            };
            report.record(outcome);
        }
    }

    /// Applies one maximal run of consecutive `DeleteEdge` ops, recording
    /// one outcome per op.  Short runs (the common case in mixed streams)
    /// and snapshot-less backends take the per-op walk without materializing
    /// a pair list; past the delete grain the run goes through the
    /// classification pre-pass + non-tree drain of
    /// [`apply_delete_pairs`](Self::apply_delete_pairs).
    ///
    /// An `AddVertices` op can never sit inside a run, so `self.len()` is
    /// constant across it — endpoint validity certified by the pre-pass
    /// cannot go stale mid-run.
    fn apply_delete_run(&mut self, run: &[OpOf<B>], report: &mut BatchReport) {
        let as_pair = |op: &OpOf<B>| -> (Vertex, Vertex) {
            let &GraphOp::DeleteEdge(u, v) = op else {
                unreachable!("delete runs contain only DeleteEdge ops");
            };
            (u, v)
        };
        if B::SNAPSHOT_QUERIES
            && (self.par.worth_delete(run.len())
                || (self.par.rebuild_enabled() && run.len() >= self.par.delete_grain))
        {
            let pairs: Vec<(Vertex, Vertex)> = run.iter().map(as_pair).collect();
            self.apply_delete_pairs(&pairs, |outcome| report.record(outcome));
        } else {
            let _walk_span = self.telemetry().span(Phase::DeleteWalk);
            for op in run {
                let (u, v) = as_pair(op);
                let outcome = self.delete_outcome(u, v);
                report.record(outcome);
            }
        }
    }
}

/// Union-find over only the vertices that actually appear in a batch, so
/// the insertion pre-pass never pays for the graph's full vertex range.
#[derive(Default)]
struct SparseDsu {
    parent: FxHashMap<Vertex, Vertex>,
}

impl SparseDsu {
    /// Iterative find with full path compression — a chain-shaped batch must
    /// not recurse `O(batch)` deep.
    fn find(&mut self, x: Vertex) -> Vertex {
        let mut root = x;
        loop {
            let p = *self.parent.entry(root).or_insert(root);
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    fn same(&mut self, a: Vertex, b: Vertex) -> bool {
        self.find(a) == self.find(b)
    }

    fn union(&mut self, a: Vertex, b: Vertex) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Canonicalises a batch: drops self loops and out-of-range endpoints,
/// orients edges `(min, max)`, and removes duplicates with the workspace's
/// (parallel) grouping primitive.
fn normalize(edges: &[(Vertex, Vertex)], n: usize) -> Vec<(Vertex, Vertex)> {
    let cleaned: Vec<(Vertex, Vertex)> = edges
        .iter()
        .filter(|&&(u, v)| u != v && u < n && v < n)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .collect();
    remove_duplicates(cleaned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UfoConnectivity;

    #[test]
    fn apply_reports_per_op_outcomes_and_counters() {
        let mut g = UfoConnectivity::new(0);
        let report = g.apply(&[
            GraphOp::AddVertices(4),
            GraphOp::InsertEdge(0, 1),
            GraphOp::InsertEdge(1, 2),
            GraphOp::InsertEdge(2, 0),  // closes a cycle within the run
            GraphOp::InsertEdge(0, 1),  // duplicate
            GraphOp::InsertEdge(3, 3),  // self loop
            GraphOp::InsertEdge(0, 99), // out of range
            GraphOp::SetWeight(2, 5),
            GraphOp::SetWeight(42, 5), // out of range
            GraphOp::DeleteEdge(0, 1), // tree edge, replaced by (2,0)
            GraphOp::DeleteEdge(0, 1), // now missing
            GraphOp::DeleteEdge(1, 2), // splits
        ]);
        use OpOutcome::*;
        assert_eq!(
            report.outcomes,
            vec![
                VerticesAdded { first: 0, count: 4 },
                EdgeInserted {
                    kind: EdgeKind::Tree
                },
                EdgeInserted {
                    kind: EdgeKind::Tree
                },
                EdgeInserted {
                    kind: EdgeKind::NonTree
                },
                Skipped(GraphError::DuplicateEdge { u: 0, v: 1 }),
                Rejected(GraphError::SelfLoop { v: 3 }),
                Rejected(GraphError::VertexOutOfRange { v: 99, len: 4 }),
                WeightSet,
                Rejected(GraphError::VertexOutOfRange { v: 42, len: 4 }),
                EdgeDeleted {
                    kind: EdgeKind::Tree,
                    split: false
                },
                Skipped(GraphError::MissingEdge { u: 0, v: 1 }),
                EdgeDeleted {
                    kind: EdgeKind::Tree,
                    split: true
                },
            ]
        );
        assert_eq!((report.applied, report.skipped, report.rejected), (7, 2, 3));
        assert_eq!((report.vertices_before, report.vertices_after), (0, 4));
        assert_eq!(report.components_before, 0);
        assert_eq!(report.components_after, 3); // {0,2}, {1}, {3}
        assert!(g.connected(0, 2) && !g.connected(0, 1));
        g.check_invariants().unwrap();
    }

    #[test]
    fn apply_rejects_vertex_id_space_overflow() {
        let mut g = UfoConnectivity::new(1);
        let report = g.apply(&[GraphOp::AddVertices(usize::MAX)]);
        assert_eq!(
            report.outcomes,
            vec![OpOutcome::Rejected(GraphError::VertexOutOfRange {
                v: usize::MAX,
                len: 1,
            })]
        );
        assert_eq!(g.len(), 1, "no growth on a rejected op");
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn apply_vertex_growth_mid_batch_enables_later_ops() {
        let mut g = UfoConnectivity::new(2);
        let report = g.apply(&[
            GraphOp::InsertEdge(0, 3), // not yet grown: rejected
            GraphOp::AddVertices(2),
            GraphOp::InsertEdge(0, 3), // now valid
            GraphOp::SetWeight(3, 9),
        ]);
        assert_eq!(
            report.outcomes[0],
            OpOutcome::Rejected(GraphError::VertexOutOfRange { v: 3, len: 2 })
        );
        assert_eq!(
            report.outcomes[2],
            OpOutcome::EdgeInserted {
                kind: EdgeKind::Tree
            }
        );
        assert_eq!(report.outcomes[3], OpOutcome::WeightSet);
        assert!(g.connected(0, 3));
        assert_eq!(g.component_sum(3), Some(9));
    }

    #[test]
    fn bulk_apply_ops_report_counts_and_typed_declines() {
        use crate::{EulerConnectivity, LinkCutConnectivity};
        // Link-cut: path applies work, component applies decline.
        let mut g = LinkCutConnectivity::new(5);
        let report = g.apply(&[
            GraphOp::InsertEdge(0, 1),
            GraphOp::InsertEdge(1, 2),
            GraphOp::InsertEdge(3, 4),
            GraphOp::SetWeight(1, 7),
            GraphOp::PathApply(0, 2, 10),
            GraphOp::PathApply(0, 3, 1),   // disconnected: benign skip
            GraphOp::PathApply(0, 99, 1),  // out of range: rejected
            GraphOp::ComponentApply(0, 1), // linkcut declines: rejected
        ]);
        use OpOutcome::*;
        assert_eq!(
            &report.outcomes[3..],
            &[
                WeightSet,
                PathApplied { count: 3 },
                Skipped(GraphError::Disconnected { u: 0, v: 3 }),
                Rejected(GraphError::VertexOutOfRange { v: 99, len: 5 }),
                Rejected(GraphError::UnsupportedQuery),
            ]
        );
        assert_eq!(g.path_sum(0, 2), Some(7 + 30));
        assert_eq!(g.path_sum(3, 4), Some(0), "other component untouched");

        // Euler: component applies work, path applies decline.
        let mut g = EulerConnectivity::new(4);
        let report = g.apply(&[
            GraphOp::InsertEdge(0, 1),
            GraphOp::InsertEdge(1, 2),
            GraphOp::ComponentApply(2, 100),
            GraphOp::PathApply(0, 2, 1), // euler declines: rejected
        ]);
        assert_eq!(
            &report.outcomes[2..],
            &[
                ComponentApplied { count: 3 },
                Rejected(GraphError::UnsupportedQuery),
            ]
        );
        assert_eq!(g.component_sum(0), Some(300));
        assert_eq!(g.component_sum(3), Some(0), "isolated vertex untouched");
        // the bulk update is visible through per-vertex readback too
        assert_eq!(g.vertex_weight(1), Some(100));
    }

    #[test]
    fn apply_matches_singleton_ops() {
        // one big mixed batch vs the same ops applied one at a time
        let n = 30;
        let mut ops: Vec<OpOf<ufo_forest::UfoForest>> = vec![GraphOp::AddVertices(n)];
        let mut x = 1u64;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) as usize % (n + 2); // occasionally out of range
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as usize % (n + 2);
            ops.push(if x & 4 == 0 {
                GraphOp::DeleteEdge(u, v)
            } else {
                GraphOp::InsertEdge(u, v)
            });
        }
        let mut bulk = UfoConnectivity::new(0);
        let bulk_report = bulk.apply(&ops);
        let mut single = UfoConnectivity::new(0);
        let mut single_outcomes = Vec::new();
        for op in &ops {
            let r = single.apply(std::slice::from_ref(op));
            single_outcomes.extend(r.outcomes);
        }
        assert_eq!(bulk_report.outcomes, single_outcomes);
        assert_eq!(bulk.component_count(), single.component_count());
        assert_eq!(bulk.num_edges(), single.num_edges());
        bulk.check_invariants().unwrap();
    }

    #[test]
    fn parallel_pre_pass_outcomes_match_sequential() {
        use dyntree_primitives::ParallelConfig;
        // A grain of 8 forces the chunked pre-pass on modest batches even
        // when the global pool has a single thread (the chunked *code path*
        // still runs; the pool just executes its chunks inline).
        let forced = ParallelConfig {
            threads: 4,
            batch_grain: 8,
            chunk_grain: 4,
            delete_grain: 8,
            ..ParallelConfig::default()
        };
        fn trace(n: usize) -> Vec<GraphOp> {
            let mut ops = vec![GraphOp::AddVertices(n)];
            let mut x = 7u64;
            for i in 0..600 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (x >> 33) as usize % (n + 2); // sometimes out of range
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (x >> 33) as usize % (n + 2);
                // long insert runs (the parallel pre-pass needs runs, not
                // singletons) with occasional delete breaks
                ops.push(if i % 97 == 96 {
                    GraphOp::DeleteEdge(u, v)
                } else {
                    GraphOp::InsertEdge(u, v)
                });
            }
            ops
        }
        fn check<B: SpanningBackend<Weights = dyntree_primitives::algebra::SumMinMax>>(
            forced: ParallelConfig,
        ) {
            let ops = trace(40);
            let mut par: DynConnectivity<B> = DynConnectivity::new(0).with_parallel_config(forced);
            let mut seq: DynConnectivity<B> =
                DynConnectivity::new(0).with_parallel_config(ParallelConfig::sequential());
            let pr = par.apply(&ops);
            let sr = seq.apply(&ops);
            assert_eq!(pr.outcomes, sr.outcomes, "byte-identical outcomes");
            assert_eq!(pr.applied, sr.applied);
            assert_eq!(par.component_count(), seq.component_count());
            assert_eq!(par.num_edges(), seq.num_edges());
            par.check_invariants().unwrap();

            // batch_insert path: same certificate machinery, count-level API
            let edges: Vec<(usize, usize)> = (0..200).map(|i| (i % 23, (i * 7 + 1) % 23)).collect();
            let mut a: DynConnectivity<B> = DynConnectivity::new(23).with_parallel_config(forced);
            let mut b: DynConnectivity<B> =
                DynConnectivity::new(23).with_parallel_config(ParallelConfig::sequential());
            assert_eq!(a.batch_insert(&edges), b.batch_insert(&edges));
            assert_eq!(a.component_count(), b.component_count());
            a.check_invariants().unwrap();
        }
        // ufo runs the chunked pre-pass (snapshot probes); link-cut skips it
        // entirely (`SNAPSHOT_QUERIES = false` — its chunk-DSU certificates
        // would be subsumed by the walk's own DSU) — both capability classes
        // must match the sequential walk exactly.
        check::<ufo_forest::UfoForest>(forced);
        check::<dyntree_linkcut::LinkCutForest>(forced);
    }

    #[test]
    fn parallel_delete_pre_pass_outcomes_match_sequential() {
        use dyntree_primitives::ParallelConfig;
        // Low grains force the classification pre-pass + drain on modest
        // runs even on a 1-thread pool (chunks then run inline).
        let forced = ParallelConfig {
            threads: 4,
            batch_grain: 8,
            chunk_grain: 4,
            delete_grain: 8,
            ..ParallelConfig::default()
        };
        fn delete_heavy_trace(n: usize) -> Vec<GraphOp> {
            let mut ops = vec![GraphOp::AddVertices(n)];
            let mut live: Vec<(usize, usize)> = Vec::new();
            let mut x = 42u64;
            let mut rand = move |m: usize| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as usize) % m
            };
            // build: chain + random extra edges (plenty of non-tree cycles)
            for i in 0..n - 1 {
                ops.push(GraphOp::InsertEdge(i, i + 1));
                live.push((i, i + 1));
            }
            for _ in 0..3 * n {
                let (u, v) = (rand(n), rand(n));
                ops.push(GraphOp::InsertEdge(u, v));
                if u != v {
                    live.push((u, v));
                }
            }
            // one long delete run: live edges (tree deletions trigger
            // replacements that promote later-deleted non-tree edges),
            // duplicates, missing edges, self loops and out-of-range ids
            let total = live.len() + 40;
            for i in 0..total {
                ops.push(match i % 10 {
                    7 => GraphOp::DeleteEdge(rand(n), rand(n)), // often missing
                    8 => {
                        let v = rand(n);
                        GraphOp::DeleteEdge(v, v) // self loop
                    }
                    9 => GraphOp::DeleteEdge(rand(n), n + rand(4)), // out of range
                    _ if !live.is_empty() => {
                        let idx = rand(live.len());
                        let (u, v) = live[idx];
                        if i % 3 == 0 {
                            live.swap_remove(idx);
                        } // else: keep → a later duplicate delete
                        GraphOp::DeleteEdge(u, v)
                    }
                    _ => GraphOp::DeleteEdge(rand(n), rand(n)),
                });
            }
            ops
        }
        let ops = delete_heavy_trace(48);
        let mut par: DynConnectivity<ufo_forest::UfoForest> =
            DynConnectivity::new(0).with_parallel_config(forced);
        let mut seq: DynConnectivity<ufo_forest::UfoForest> =
            DynConnectivity::new(0).with_parallel_config(ParallelConfig::sequential());
        let pr = par.apply(&ops);
        let sr = seq.apply(&ops);
        assert_eq!(pr.outcomes, sr.outcomes, "byte-identical outcomes");
        assert_eq!(
            (pr.applied, pr.skipped, pr.rejected),
            (sr.applied, sr.skipped, sr.rejected)
        );
        assert_eq!(par.component_count(), seq.component_count());
        assert_eq!(par.num_edges(), seq.num_edges());
        par.check_invariants().unwrap();

        // batch_delete shares the machinery, count-level API
        let edges: Vec<(usize, usize)> = (0..200).map(|i| (i % 29, (i * 11 + 1) % 29)).collect();
        let mut a: DynConnectivity<ufo_forest::UfoForest> =
            DynConnectivity::new(29).with_parallel_config(forced);
        let mut b: DynConnectivity<ufo_forest::UfoForest> =
            DynConnectivity::new(29).with_parallel_config(ParallelConfig::sequential());
        a.batch_insert(&edges);
        b.batch_insert(&edges);
        assert_eq!(a.batch_delete(&edges), b.batch_delete(&edges));
        assert_eq!(a.component_count(), b.component_count());
        assert_eq!(a.num_edges(), 0);
        a.check_invariants().unwrap();
    }

    #[test]
    fn snapshotless_backends_take_the_sequential_delete_walk() {
        use dyntree_primitives::ParallelConfig;
        let forced = ParallelConfig {
            threads: 8,
            batch_grain: 8,
            chunk_grain: 2,
            delete_grain: 4,
            ..ParallelConfig::default()
        };
        // link-cut declines snapshot probes; the delete run must still give
        // byte-identical outcomes through the per-op fallback
        let edges: Vec<(usize, usize)> = (0..60).map(|i| (i % 13, (i * 5 + 1) % 13)).collect();
        let mut par: DynConnectivity<dyntree_linkcut::LinkCutForest> =
            DynConnectivity::new(13).with_parallel_config(forced);
        let mut seq: DynConnectivity<dyntree_linkcut::LinkCutForest> =
            DynConnectivity::new(13).with_parallel_config(ParallelConfig::sequential());
        par.batch_insert(&edges);
        seq.batch_insert(&edges);
        let ops: Vec<GraphOp> = edges
            .iter()
            .flat_map(|&(u, v)| [GraphOp::DeleteEdge(u, v); 2]) // with duplicates
            .collect();
        let pr = par.apply(&ops);
        let sr = seq.apply(&ops);
        assert_eq!(pr.outcomes, sr.outcomes);
        par.check_invariants().unwrap();
    }

    #[test]
    fn pre_pass_survives_more_chunks_than_items_per_chunk() {
        // Regression: a uniform ceil-division chunk split sent trailing
        // chunks past the end of the batch (lo > hi slice panic) whenever
        // chunks² exceeded the batch length, e.g. a wide explicit fan-out
        // over a modest batch.
        use dyntree_primitives::ParallelConfig;
        let cfg = ParallelConfig {
            threads: 64,
            batch_grain: 8,
            chunk_grain: 1,
            delete_grain: 8,
            ..ParallelConfig::default()
        };
        let mut g: DynConnectivity<ufo_forest::UfoForest> =
            DynConnectivity::new(200).with_parallel_config(cfg);
        let edges: Vec<(usize, usize)> = (0..100).map(|i| (i, i + 100)).collect();
        assert_eq!(g.batch_insert(&edges), 100);
        g.check_invariants().unwrap();
    }

    #[test]
    fn batch_insert_dedupes_and_classifies() {
        let mut g = UfoConnectivity::new(5);
        let applied = g.batch_insert(&[(0, 1), (1, 0), (1, 2), (2, 0), (3, 3), (0, 9)]);
        // (1,0) duplicates (0,1); (3,3) self loop; (0,9) out of range
        assert_eq!(applied, 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.component_count(), 3); // {0,1,2}, {3}, {4}
        assert_eq!(g.spanning_forest_size(), 2);
    }

    #[test]
    fn batch_delete_triggers_replacements() {
        let mut g = UfoConnectivity::new(6);
        // two triangles bridged by (2, 3)
        g.batch_insert(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(g.component_count(), 1);
        // delete one tree edge per triangle: non-tree edges replace them
        let removed = g.batch_delete(&[(0, 1), (3, 4)]);
        assert_eq!(removed, 2);
        assert_eq!(g.component_count(), 1);
        assert!(g.connected(0, 5));
        // deleting the bridge splits
        assert_eq!(g.batch_delete(&[(2, 3), (2, 3)]), 1);
        assert!(!g.connected(0, 5));
        assert_eq!(g.component_count(), 2);
    }

    #[test]
    fn huge_chain_batch_does_not_overflow_the_stack() {
        // one chain-shaped batch plus a closing edge: the pre-pass DSU must
        // resolve the length-k parent chain iteratively
        let k = 200_000;
        let mut g = crate::LinkCutConnectivity::new(k + 1);
        let mut batch: Vec<(usize, usize)> = (0..k).map(|i| (i, i + 1)).collect();
        batch.push((0, k));
        assert_eq!(g.batch_insert(&batch), k + 1);
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.spanning_forest_size(), k);
    }

    #[test]
    fn batch_connected_queries() {
        let mut g = UfoConnectivity::new(6);
        g.batch_insert(&[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(
            g.batch_connected(&[(0, 2), (0, 4), (4, 5), (3, 3)]),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut batched = UfoConnectivity::new(40);
        let mut sequential = UfoConnectivity::new(40);
        let edges: Vec<(usize, usize)> = (0..40)
            .flat_map(|u| [(u, (u + 1) % 40), (u, (u + 7) % 40)])
            .collect();
        for chunk in edges.chunks(8) {
            batched.batch_insert(chunk);
            for &(u, v) in chunk {
                sequential.insert_edge(u, v);
            }
        }
        assert_eq!(batched.num_edges(), sequential.num_edges());
        assert_eq!(batched.component_count(), sequential.component_count());
        for chunk in edges.chunks(16) {
            batched.batch_delete(chunk);
            for &(u, v) in chunk {
                sequential.delete_edge(u, v);
            }
            assert_eq!(batched.component_count(), sequential.component_count());
        }
        assert_eq!(batched.num_edges(), 0);
    }
}
