//! Batch front-end for [`DynConnectivity`]: canonicalise, group and
//! deduplicate whole batches with the `dyntree_primitives` grouping
//! primitives before the tree layer sees a single operation.
//!
//! Batched insertion additionally runs a union-find pre-pass over the batch
//! itself: once earlier edges of the batch have united two endpoints, a later
//! edge between them is provably a cycle edge and skips the backend's
//! connectivity probe.  The pre-pass deliberately does **not** probe the live
//! forest, so intra-component edges whose endpoints are only connected by
//! pre-batch state still pay one backend probe each.

use std::collections::HashMap;

use dyntree_primitives::remove_duplicates;

use crate::backend::SpanningBackend;
use crate::engine::DynConnectivity;
use crate::Vertex;

impl<B: SpanningBackend> DynConnectivity<B> {
    /// Applies a batch of edge insertions.  Self loops and duplicates (within
    /// the batch or with live edges) are skipped.  Returns the number of
    /// edges actually inserted.
    pub fn batch_insert(&mut self, edges: &[(Vertex, Vertex)]) -> usize {
        let batch = normalize(edges, self.len());
        let mut applied = 0;
        // Union-find pre-pass: once earlier batch edges have united two
        // endpoints, a later edge between them is provably a cycle edge, so
        // it can be classified non-tree without a backend connectivity probe.
        // The DSU is sparse (keyed on batch endpoints only), so the pre-pass
        // costs O(|batch| α) regardless of the graph's vertex count.
        let mut dsu = SparseDsu::default();
        for &(u, v) in &batch {
            let inserted = if dsu.same(u, v) {
                self.insert_nontree_edge(u, v)
            } else {
                self.insert_edge(u, v)
            };
            if inserted {
                applied += 1;
            }
            dsu.union(u, v);
        }
        applied
    }

    /// Applies a batch of edge deletions.  Returns the number of edges
    /// actually removed.
    pub fn batch_delete(&mut self, edges: &[(Vertex, Vertex)]) -> usize {
        let batch = normalize(edges, self.len());
        let mut applied = 0;
        for &(u, v) in &batch {
            if self.delete_edge(u, v) {
                applied += 1;
            }
        }
        applied
    }

    /// Answers a batch of connectivity queries.
    pub fn batch_connected(&mut self, queries: &[(Vertex, Vertex)]) -> Vec<bool> {
        queries.iter().map(|&(u, v)| self.connected(u, v)).collect()
    }
}

/// Union-find over only the vertices that actually appear in a batch, so
/// the insertion pre-pass never pays for the graph's full vertex range.
#[derive(Default)]
struct SparseDsu {
    parent: HashMap<Vertex, Vertex>,
}

impl SparseDsu {
    /// Iterative find with full path compression — a chain-shaped batch must
    /// not recurse `O(batch)` deep.
    fn find(&mut self, x: Vertex) -> Vertex {
        let mut root = x;
        loop {
            let p = *self.parent.entry(root).or_insert(root);
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    fn same(&mut self, a: Vertex, b: Vertex) -> bool {
        self.find(a) == self.find(b)
    }

    fn union(&mut self, a: Vertex, b: Vertex) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Canonicalises a batch: drops self loops and out-of-range endpoints,
/// orients edges `(min, max)`, and removes duplicates with the workspace's
/// (parallel) grouping primitive.
fn normalize(edges: &[(Vertex, Vertex)], n: usize) -> Vec<(Vertex, Vertex)> {
    let cleaned: Vec<(Vertex, Vertex)> = edges
        .iter()
        .filter(|&&(u, v)| u != v && u < n && v < n)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .collect();
    remove_duplicates(cleaned)
}

#[cfg(test)]
mod tests {
    use crate::UfoConnectivity;

    #[test]
    fn batch_insert_dedupes_and_classifies() {
        let mut g = UfoConnectivity::new(5);
        let applied = g.batch_insert(&[(0, 1), (1, 0), (1, 2), (2, 0), (3, 3), (0, 9)]);
        // (1,0) duplicates (0,1); (3,3) self loop; (0,9) out of range
        assert_eq!(applied, 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.component_count(), 3); // {0,1,2}, {3}, {4}
        assert_eq!(g.spanning_forest_size(), 2);
    }

    #[test]
    fn batch_delete_triggers_replacements() {
        let mut g = UfoConnectivity::new(6);
        // two triangles bridged by (2, 3)
        g.batch_insert(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(g.component_count(), 1);
        // delete one tree edge per triangle: non-tree edges replace them
        let removed = g.batch_delete(&[(0, 1), (3, 4)]);
        assert_eq!(removed, 2);
        assert_eq!(g.component_count(), 1);
        assert!(g.connected(0, 5));
        // deleting the bridge splits
        assert_eq!(g.batch_delete(&[(2, 3), (2, 3)]), 1);
        assert!(!g.connected(0, 5));
        assert_eq!(g.component_count(), 2);
    }

    #[test]
    fn huge_chain_batch_does_not_overflow_the_stack() {
        // one chain-shaped batch plus a closing edge: the pre-pass DSU must
        // resolve the length-k parent chain iteratively
        let k = 200_000;
        let mut g = crate::LinkCutConnectivity::new(k + 1);
        let mut batch: Vec<(usize, usize)> = (0..k).map(|i| (i, i + 1)).collect();
        batch.push((0, k));
        assert_eq!(g.batch_insert(&batch), k + 1);
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.spanning_forest_size(), k);
    }

    #[test]
    fn batch_connected_queries() {
        let mut g = UfoConnectivity::new(6);
        g.batch_insert(&[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(
            g.batch_connected(&[(0, 2), (0, 4), (4, 5), (3, 3)]),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut batched = UfoConnectivity::new(40);
        let mut sequential = UfoConnectivity::new(40);
        let edges: Vec<(usize, usize)> = (0..40)
            .flat_map(|u| [(u, (u + 1) % 40), (u, (u + 7) % 40)])
            .collect();
        for chunk in edges.chunks(8) {
            batched.batch_insert(chunk);
            for &(u, v) in chunk {
                sequential.insert_edge(u, v);
            }
        }
        assert_eq!(batched.num_edges(), sequential.num_edges());
        assert_eq!(batched.component_count(), sequential.component_count());
        for chunk in edges.chunks(16) {
            batched.batch_delete(chunk);
            for &(u, v) in chunk {
                sequential.delete_edge(u, v);
            }
            assert_eq!(batched.component_count(), sequential.component_count());
        }
        assert_eq!(batched.num_edges(), 0);
    }
}
