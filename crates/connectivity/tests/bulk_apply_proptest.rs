//! Property-based differential for the bulk weight ops (`PathApply` /
//! `ComponentApply`): arbitrary op sequences — deliberate out-of-range ids
//! included — replayed through every supporting backend at pool widths 1, 2
//! and 8 and several batch sizes, against the naive engine fed one op at a
//! time (an *eager* oracle: it rewrites every touched weight at apply time,
//! while the lazy backends park pending actions and push them down on
//! access).
//!
//! Comparisons are byte-strict where the engine contracts byte-identity:
//! flattened per-op outcomes and the final per-vertex weight readback must
//! match the oracle exactly, and `BatchReport` renderings must be identical
//! across widths at a fixed batch size.  The weight readback is what forces
//! a lazy backend to flush every tag it parked, so a push-down bug that
//! never surfaced through an aggregate query still fails here.

use dyntree_connectivity::{DynConnectivity, GraphOp, OpOutcome, SpanningBackend};
use dyntree_euler::EulerTourForest;
use dyntree_linkcut::LinkCutForest;
use dyntree_naive::NaiveForest;
use dyntree_primitives::algebra::SumMinMax;
use dyntree_primitives::ParallelConfig;
use dyntree_seqs::{SplaySequence, TreapSequence};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Universe size every replay starts with.
const N: usize = 16;
/// Ids range a little past the universe so every sequence carries some
/// deliberately invalid ops, which must be rejected identically everywhere.
const ID: std::ops::Range<usize> = 0..N + 2;

/// Arbitrary op sequences; `path` / `comp` gate which bulk kinds appear so
/// each property can target the backends that support them.
fn ops_strategy(path: bool, comp: bool) -> impl Strategy<Value = Vec<GraphOp>> {
    let mut arms: Vec<BoxedStrategy<GraphOp>> = vec![
        // inserts twice: uniform choice otherwise leaves the graph too
        // sparse for paths/components worth applying over
        (ID, ID)
            .prop_map(|uv| GraphOp::InsertEdge(uv.0, uv.1))
            .boxed(),
        (ID, ID)
            .prop_map(|uv| GraphOp::InsertEdge(uv.0, uv.1))
            .boxed(),
        (ID, ID)
            .prop_map(|uv| GraphOp::DeleteEdge(uv.0, uv.1))
            .boxed(),
        (ID, -100i64..100)
            .prop_map(|vw| GraphOp::SetWeight(vw.0, vw.1))
            .boxed(),
    ];
    if path {
        arms.push(
            (ID, ID, -50i64..50)
                .prop_map(|t| GraphOp::PathApply(t.0, t.1, t.2))
                .boxed(),
        );
    }
    if comp {
        arms.push(
            (ID, -50i64..50)
                .prop_map(|vd| GraphOp::ComponentApply(vd.0, vd.1))
                .boxed(),
        );
    }
    proptest::collection::vec(proptest::Union::new(arms), 0..120)
}

/// One replay: rendered reports (timing stripped), flattened outcomes, and
/// the final per-vertex weight readback (the lazy-tag flush).
fn replay<B: SpanningBackend<Weights = SumMinMax>>(
    ops: &[GraphOp],
    batch: usize,
    threads: usize,
) -> (Vec<String>, Vec<OpOutcome>, Vec<Option<i64>>) {
    // fine grains so the parallel pre-passes engage even on tiny batches
    let cfg = ParallelConfig {
        threads,
        batch_grain: 4,
        chunk_grain: 4,
        delete_grain: 8,
        ..ParallelConfig::default()
    };
    let mut g: DynConnectivity<B> = DynConnectivity::new(N).with_parallel_config(cfg);
    let mut reports = Vec::new();
    let mut outcomes = Vec::new();
    for chunk in ops.chunks(batch.max(1)) {
        let mut r = g.apply(chunk);
        r.telemetry = None;
        outcomes.extend(r.outcomes.iter().copied());
        reports.push(format!("{r:?}"));
    }
    let weights = (0..g.len()).map(|v| g.vertex_weight(v)).collect();
    (reports, outcomes, weights)
}

/// Asserts a backend's outcomes and final weights are invariant under batch
/// size and pool width (bulk ops run sequentially in op order, so there is
/// no config where this may drift).
fn batch_and_width_independent<B: SpanningBackend<Weights = SumMinMax>>(
    ops: &[GraphOp],
) -> Result<(), TestCaseError> {
    let base = replay::<B>(ops, 1, 1);
    for &(batch, threads) in &[(8usize, 2usize), (64, 8)] {
        let run = replay::<B>(ops, batch, threads);
        prop_assert_eq!(
            &run.1,
            &base.1,
            "outcomes drifted at batch {} x{}",
            batch,
            threads
        );
        prop_assert_eq!(
            &run.2,
            &base.2,
            "weights drifted at batch {} x{}",
            batch,
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Link-cut is the lazy *path* backend; `PathApplied { count }` is
    // comparable against naive because the engine owns every tree/non-tree
    // decision, so both maintain the same spanning forest.
    #[test]
    fn path_applies_are_differential_clean_at_every_width(
        ops in ops_strategy(true, false),
    ) {
        let (_, oracle_out, oracle_w) = replay::<NaiveForest>(&ops, 1, 1);
        let legs = [
            replay::<LinkCutForest>(&ops, 8, 1),
            replay::<LinkCutForest>(&ops, 8, 2),
            replay::<LinkCutForest>(&ops, 8, 8),
            replay::<NaiveForest>(&ops, 8, 1),
        ];
        for (reports, out, w) in &legs {
            prop_assert_eq!(reports, &legs[0].0);
            prop_assert_eq!(out, &oracle_out);
            prop_assert_eq!(w, &oracle_w);
        }
    }

    // Euler-tour (both sequence flavors) is the lazy *component* backend.
    #[test]
    fn component_applies_are_differential_clean_at_every_width(
        ops in ops_strategy(false, true),
    ) {
        let (_, oracle_out, oracle_w) = replay::<NaiveForest>(&ops, 1, 1);
        let legs = [
            replay::<EulerTourForest<TreapSequence>>(&ops, 8, 1),
            replay::<EulerTourForest<TreapSequence>>(&ops, 8, 2),
            replay::<EulerTourForest<TreapSequence>>(&ops, 8, 8),
            replay::<EulerTourForest<SplaySequence>>(&ops, 8, 1),
            replay::<NaiveForest>(&ops, 8, 1),
        ];
        for (reports, out, w) in &legs {
            prop_assert_eq!(reports, &legs[0].0);
            prop_assert_eq!(out, &oracle_out);
            prop_assert_eq!(w, &oracle_w);
        }
    }

    // Mixed sequences (both bulk kinds, so every backend sees ops it
    // declines): each backend must still be batch- and width-independent.
    #[test]
    fn mixed_bulk_sequences_are_batch_and_width_independent(
        ops in ops_strategy(true, true),
    ) {
        batch_and_width_independent::<LinkCutForest>(&ops)?;
        batch_and_width_independent::<EulerTourForest<TreapSequence>>(&ops)?;
        batch_and_width_independent::<NaiveForest>(&ops)?;
        batch_and_width_independent::<ufo_forest::UfoForest>(&ops)?;
    }
}
