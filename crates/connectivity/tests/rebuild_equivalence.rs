//! Rebuild escape hatch: the **relaxed canonical-outcome** contract.
//!
//! With a non-zero [`ParallelConfig::rebuild_threshold`], certified tree
//! deletions that dominate their component skip the per-edge replacement
//! search and rebuild the component's spanning forest from surviving
//! registry edges instead.  That trades the default byte-identity contract
//! for a weaker — but still deterministic — one, pinned here:
//!
//! * per-op **errors** (skips/rejections) are identical to the sequential
//!   hatch-off oracle;
//! * per-op **split flags** are identical (the reverse-replay attribution
//!   examines exactly the post-op live-graph connectivity);
//! * per-op **kinds** may diverge: within a single delete run from shared
//!   state, only in one direction (an op the oracle reports as `Tree` — a
//!   stale certificate promoted mid-run — may report `NonTree` under the
//!   hatch, never the reverse); across longer traces the two runs maintain
//!   *different spanning forests* of the same graph after the first
//!   rebuild, so later kinds are incomparable in both directions.  Split
//!   flags remain comparable throughout: a bridge is a tree edge in every
//!   spanning forest, and deleting a non-bridge never splits;
//! * the final **semantic state** — component count, pairwise connectivity,
//!   live edge set — is identical;
//! * the hatch path itself is byte-identical across pool fan-outs.

use dyntree_connectivity::{DynConnectivity, EdgeKind, OpOutcome, SpanningBackend};
use dyntree_primitives::algebra::SumMinMax;
use dyntree_primitives::{GraphOp, ParallelConfig};
use dyntree_workloads::FuzzTraceGen;
use proptest::prelude::*;
use ufo_forest::UfoForest;

/// Low-grain config with the rebuild hatch armed at `percent`.
fn hatch(threads: usize, percent: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        batch_grain: 16,
        chunk_grain: 8,
        delete_grain: 8,
        ..ParallelConfig::default()
    }
    .with_rebuild_threshold(percent)
}

/// Hatch-off oracle with the same grains (so batching decisions match).
fn oracle_cfg() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        batch_grain: 16,
        chunk_grain: 8,
        delete_grain: 8,
        ..ParallelConfig::default()
    }
}

/// Everything the relaxed contract compares.
struct Run {
    outcomes: Vec<Vec<OpOutcome>>,
    components: usize,
    /// sorted live edge set
    edges: Vec<(usize, usize)>,
    /// all-pairs connectivity matrix, row-major over `0..n`
    connected: Vec<bool>,
}

fn replay<B: SpanningBackend<Weights = SumMinMax>>(
    batches: &[Vec<GraphOp>],
    n: usize,
    cfg: ParallelConfig,
) -> Run {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(0).with_parallel_config(cfg);
    let mut outcomes = Vec::new();
    for (bi, batch) in batches.iter().enumerate() {
        outcomes.push(engine.apply(batch).outcomes);
        // every hatched batch must leave the full invariant set intact —
        // the HDT level invariant included, which a rebuild can silently
        // break in ways only a *later* targeted delete would surface
        if let Err(e) = engine.check_invariants() {
            panic!("invariant violation after batch {bi}: {e}");
        }
    }
    let mut edges = Vec::new();
    let mut connected = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u < v && engine.has_edge(u, v) {
                edges.push((u, v));
            }
            connected.push(engine.connected(u, v));
        }
    }
    Run {
        outcomes,
        components: engine.component_count(),
        edges,
        connected,
    }
}

/// Asserts the relaxed contract between a hatch-off oracle run and a
/// rebuild-enabled run; returns how many kinds diverged (all Tree→NonTree).
fn assert_relaxed_equiv(oracle: &Run, hatched: &Run) -> usize {
    assert_eq!(oracle.outcomes.len(), hatched.outcomes.len());
    let mut kind_divergences = 0;
    for (bi, (a, b)) in oracle.outcomes.iter().zip(&hatched.outcomes).enumerate() {
        assert_eq!(a.len(), b.len(), "batch {bi}: outcome count diverged");
        for (oi, (x, y)) in a.iter().zip(b).enumerate() {
            match (x, y) {
                (
                    OpOutcome::EdgeDeleted {
                        kind: ka,
                        split: sa,
                    },
                    OpOutcome::EdgeDeleted {
                        kind: kb,
                        split: sb,
                    },
                ) => {
                    assert_eq!(sa, sb, "batch {bi} op {oi}: split flag diverged");
                    // kinds are forest-relative; after the first rebuild
                    // the runs keep different (equally valid) spanning
                    // forests, so only tally the divergences
                    kind_divergences += usize::from(ka != kb);
                }
                _ => assert_eq!(x, y, "batch {bi} op {oi}: outcome diverged"),
            }
        }
    }
    assert_eq!(oracle.components, hatched.components, "component count");
    assert_eq!(oracle.edges, hatched.edges, "live edge set");
    assert_eq!(oracle.connected, hatched.connected, "connectivity matrix");
    kind_divergences
}

/// Deterministic pin of the one allowed divergence: a triangle whose
/// non-tree edge is promoted mid-run by the oracle (stale certificate →
/// reported `Tree`), while the rebuild path keeps its pre-batch `NonTree`
/// class.  Split flags agree either way.
#[test]
fn stale_promotion_kind_divergence_is_one_directional() {
    let n = 16;
    let mut build = vec![GraphOp::AddVertices(n)];
    // triangle 0-1-2 (edge (0,2) closes the cycle → NonTree)
    build.push(GraphOp::InsertEdge(0, 1));
    build.push(GraphOp::InsertEdge(1, 2));
    build.push(GraphOp::InsertEdge(0, 2));
    // a disjoint chain so the batch has a second component to certify
    for i in 4..12 {
        build.push(GraphOp::InsertEdge(i, i + 1));
    }
    // one delete run long enough to clear delete_grain = 8: both triangle
    // edges plus missing-edge padding (classified Missing, never grouped)
    let mut dels = vec![GraphOp::DeleteEdge(0, 1), GraphOp::DeleteEdge(0, 2)];
    for i in 4..11 {
        dels.push(GraphOp::DeleteEdge(i, i + 5));
    }
    let batches = vec![build, dels];

    let oracle = replay::<UfoForest>(&batches, n, oracle_cfg());
    // threshold 30: the triangle group has 1 certified tree deletion over a
    // 3-vertex component (33% ≥ 30%) → rebuild fires
    let hatched = replay::<UfoForest>(&batches, n, hatch(1, 30));
    let divergences = assert_relaxed_equiv(&oracle, &hatched);
    assert_eq!(
        divergences, 1,
        "expected exactly the stale-promotion op to diverge"
    );

    // and pin the exact outcomes: oracle promotes (0,2) after deleting
    // (0,1), then finds it gone-stale and reports Tree/split; the rebuild
    // keeps the pre-batch NonTree class with the same split flag
    let seq = &oracle.outcomes[1];
    let reb = &hatched.outcomes[1];
    assert_eq!(
        seq[0],
        OpOutcome::EdgeDeleted {
            kind: EdgeKind::Tree,
            split: false
        }
    );
    assert_eq!(
        seq[1],
        OpOutcome::EdgeDeleted {
            kind: EdgeKind::Tree,
            split: true
        }
    );
    assert_eq!(reb[0], seq[0]);
    assert_eq!(
        reb[1],
        OpOutcome::EdgeDeleted {
            kind: EdgeKind::NonTree,
            split: true
        }
    );
}

/// Regression: a rebuild must not strand a non-tree survivor above its
/// endpoints' tree-path level (the HDT level invariant).  Survivors used to
/// be promoted at their *kept* levels in sorted order, so here (0,5) at
/// level 0 was promoted first and (2,5) stayed non-tree at level 1 with
/// only a level-0 tree path — and the later delete of tree edge (0,5)
/// searched levels ≤ 0 only, missed (2,5), and reported a false split
/// while the edge was still live.  The fix resets every surviving
/// non-tree edge of a rebuilt component to level 0.
#[test]
fn rebuild_resets_survivor_levels_so_later_searches_find_them() {
    let n = 16;
    // Triangle 2-3-5 (tree (2,3),(3,5); non-tree (2,5)) hanging off a
    // heavier chain 7-8-9-10 via tree edge (3,7).
    let mut build = vec![GraphOp::AddVertices(n)];
    for &(u, v) in &[(2, 3), (3, 5), (2, 5), (3, 7), (7, 8), (8, 9), (9, 10)] {
        build.push(GraphOp::InsertEdge(u, v));
    }
    // Deleting (3,7) makes {2,3,5} the smaller side of the level-0 search:
    // its tree edges (2,3),(3,5) and internal non-tree edge (2,5) are all
    // bumped to level 1.
    let bump = vec![GraphOp::DeleteEdge(3, 7)];
    // Attach vertex 0: (0,2) joins as a level-0 tree edge, then (0,5)
    // closes a cycle as a level-0 non-tree edge.
    let attach = vec![GraphOp::InsertEdge(0, 2), GraphOp::InsertEdge(0, 5)];
    // One delete run at exactly delete_grain = 8 killing the level-1 path
    // (2,3),(3,5): 2 certified tree deletions on the 4-vertex component
    // {0,2,3,5} (50 % ≥ 30 %) trips the hatch; the padding pairs are all
    // dead (classified Missing, never grouped).
    let mut dels = vec![GraphOp::DeleteEdge(2, 3), GraphOp::DeleteEdge(3, 5)];
    for &(u, v) in &[(1, 4), (1, 6), (4, 6), (1, 11), (4, 11), (6, 11)] {
        dels.push(GraphOp::DeleteEdge(u, v));
    }
    // The targeted later delete: under the hatch (0,5) was promoted into
    // the forest, and its replacement search must find (2,5).
    let probe = vec![GraphOp::DeleteEdge(0, 5)];
    let batches = vec![build, bump, attach, dels, probe];

    let oracle = replay::<UfoForest>(&batches, n, oracle_cfg());
    let hatched = replay::<UfoForest>(&batches, n, hatch(1, 30));
    assert_relaxed_equiv(&oracle, &hatched);
    // 0, 2 and 5 stay one component via the surviving (0,2) and (2,5):
    // the probe delete must NOT split
    assert!(hatched.connected[2 * n + 5], "(2,5) still connects");
    assert!(hatched.connected[2], "(0,2) still connects");
    assert!(hatched.edges.contains(&(2, 5)), "(2,5) still live");
    match hatched.outcomes[4][0] {
        OpOutcome::EdgeDeleted { split, .. } => {
            assert!(!split, "deleting (0,5) falsely split the component")
        }
        ref other => panic!("probe delete reported {other:?}"),
    }
}

/// The hatch path must itself be deterministic: byte-identical outcomes at
/// every forced fan-out (rebuild groups always run on the driving thread;
/// surviving searcher groups keep the byte-identity contract).
#[test]
fn rebuild_runs_are_identical_across_fanouts() {
    let batches = FuzzTraceGen::new(0x0EBD_117D)
        .with_ops(6_000)
        .with_vertices(96)
        .delete_heavy()
        .batches(512);
    let reference = replay::<UfoForest>(&batches, 96, hatch(1, 25));
    for threads in [2, 4, 8] {
        let wide = replay::<UfoForest>(&batches, 96, hatch(threads, 25));
        assert_eq!(
            wide.outcomes, reference.outcomes,
            "hatched fan-out {threads} diverged"
        );
        assert_eq!(wide.components, reference.components);
        assert_eq!(wide.edges, reference.edges);
        assert_eq!(wide.connected, reference.connected);
    }
}

/// Delete-heavy fuzz traces under an aggressive threshold stay within the
/// relaxed contract at several fan-outs.
#[test]
fn fuzz_traces_respect_the_relaxed_contract() {
    for seed in [0x0EB1u64, 0x0EB2, 0x0EB3] {
        let batches = FuzzTraceGen::new(seed)
            .with_ops(5_000)
            .with_vertices(80)
            .delete_heavy()
            .batches(400);
        let oracle = replay::<UfoForest>(&batches, 80, oracle_cfg());
        for threads in [1, 4] {
            let hatched = replay::<UfoForest>(&batches, 80, hatch(threads, 1));
            assert_relaxed_equiv(&oracle, &hatched);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Random multi-component insert/delete traces: build a random edge
    // set over 24 vertices, then tear down a random subset (by index, so
    // most deletions hit live edges) in one run, under random thresholds.
    #[test]
    fn random_teardowns_respect_the_relaxed_contract(
        edges in proptest::collection::vec((0usize..24, 0usize..24), 12..96),
        dels in proptest::collection::vec(0usize..96, 12..96),
        threshold in 1usize..120,
    ) {
        let n = 24;
        let mut build = vec![GraphOp::AddVertices(n)];
        for &(u, v) in &edges {
            build.push(GraphOp::InsertEdge(u, v));
        }
        let del_ops: Vec<GraphOp> = dels
            .iter()
            .map(|&i| {
                let (u, v) = edges[i % edges.len()];
                GraphOp::DeleteEdge(u, v)
            })
            .collect();
        let batches = vec![build, del_ops];
        let oracle = replay::<UfoForest>(&batches, n, oracle_cfg());
        let hatched = replay::<UfoForest>(&batches, n, hatch(4, threshold));
        assert_relaxed_equiv(&oracle, &hatched);
        // and the hatch is reproducible at another fan-out
        let narrow = replay::<UfoForest>(&batches, n, hatch(1, threshold));
        prop_assert_eq!(narrow.outcomes, hatched.outcomes);
        prop_assert_eq!(narrow.components, hatched.components);
    }
}

/// The hatch must actually fire on these traces (`rebuilds_taken > 0`),
/// otherwise the contract tests above exercise nothing.
#[cfg(feature = "telemetry")]
#[test]
fn rebuilds_actually_fire() {
    use dyntree_primitives::Telemetry;

    let batches = FuzzTraceGen::new(0x0EBD_117D)
        .with_ops(6_000)
        .with_vertices(96)
        .delete_heavy()
        .batches(512);
    let mut engine: DynConnectivity<UfoForest> = DynConnectivity::new(0)
        .with_parallel_config(hatch(1, 25))
        .with_telemetry(Telemetry::enabled());
    for batch in &batches {
        engine.apply(batch);
    }
    engine.check_invariants().unwrap();
    let snap = engine.telemetry_snapshot().expect("telemetry enabled");
    assert!(
        snap.counter("rebuilds_taken") > 0,
        "rebuild hatch never fired on the delete-heavy trace"
    );
}
