//! Property tests for the flat sorted-array adjacency (`VertexAdj` /
//! `LevelAdjacency`) against an ordered-map model: a `BTreeMap`/`BTreeSet`
//! mirror of the same one-sided operations, which is exactly the structure
//! the flat arrays replaced (DESIGN.md §12).  The model's natural iteration
//! order *is* the canonical `(level, neighbour)` order the determinism
//! contract requires, so agreement here checks both the contents and the
//! order of every traversal the replacement search depends on.

use std::collections::{BTreeMap, BTreeSet};

use dyntree_connectivity::levels::VertexAdj;
use proptest::prelude::*;
use proptest::TestCaseError;

/// Neighbour-id and level ranges kept small so collisions (same neighbour,
/// same level, duplicate non-tree entries) actually happen.
const W: usize = 12;
const L: usize = 5;

/// The BTreeMap model of one vertex's adjacency state.
#[derive(Default, Debug)]
struct Model {
    /// neighbour → level of the tree edge.
    tree: BTreeMap<usize, usize>,
    /// `(level, neighbour)` of every tree edge (the mirror).
    tree_by_level: BTreeSet<(usize, usize)>,
    /// `(level, neighbour)` multiset of non-tree entries (duplicates allowed
    /// by the one-sided push primitive).
    nontree: BTreeMap<(usize, usize), usize>,
}

impl Model {
    fn tree_insert(&mut self, w: usize, level: usize) {
        assert!(self.tree.insert(w, level).is_none());
        self.tree_by_level.insert((level, w));
    }

    fn tree_remove(&mut self, w: usize) -> Option<usize> {
        let level = self.tree.remove(&w)?;
        self.tree_by_level.remove(&(level, w));
        Some(level)
    }

    fn tree_set_level(&mut self, w: usize, level: usize) -> usize {
        let old = self.tree.insert(w, level).unwrap();
        self.tree_by_level.remove(&(old, w));
        self.tree_by_level.insert((level, w));
        old
    }

    fn nontree_push(&mut self, w: usize, level: usize) {
        *self.nontree.entry((level, w)).or_insert(0) += 1;
    }

    fn nontree_remove(&mut self, w: usize, level: usize) -> bool {
        match self.nontree.get_mut(&(level, w)) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.nontree.remove(&(level, w));
                }
                true
            }
            None => false,
        }
    }

    fn nontree_bucket(&self, level: usize) -> Vec<usize> {
        self.nontree
            .range((level, 0)..(level + 1, 0))
            .flat_map(|(&(_, w), &n)| std::iter::repeat_n(w, n))
            .collect()
    }

    fn nontree_take_bucket(&mut self, level: usize) -> Vec<usize> {
        let out = self.nontree_bucket(level);
        let keys: Vec<(usize, usize)> = self
            .nontree
            .range((level, 0)..(level + 1, 0))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            self.nontree.remove(&k);
        }
        out
    }

    fn nontree_set_bucket(&mut self, level: usize, neighbors: &[usize]) {
        self.nontree_take_bucket(level);
        for &w in neighbors {
            self.nontree_push(w, level);
        }
    }

    /// Checks every traversal of the flat structure against the model,
    /// including iteration order.
    fn assert_matches(&self, flat: &VertexAdj) -> Result<(), TestCaseError> {
        let tree: Vec<(usize, usize)> = flat.tree_neighbors().collect();
        let model_tree: Vec<(usize, usize)> = self.tree.iter().map(|(&w, &l)| (w, l)).collect();
        prop_assert_eq!(tree, model_tree, "tree_neighbors order/content");
        for w in 0..W {
            prop_assert_eq!(flat.tree_level(w), self.tree.get(&w).copied());
        }
        for level in 0..L + 1 {
            let at: Vec<usize> = flat.tree_neighbors_at(level).collect();
            let model_at: Vec<usize> = self
                .tree_by_level
                .range((level, 0)..(level + 1, 0))
                .map(|&(_, w)| w)
                .collect();
            prop_assert_eq!(at, model_at, "tree_neighbors_at({}) order", level);
            let from: Vec<usize> = flat.tree_neighbors_from(level).collect();
            let model_from: Vec<usize> = self
                .tree_by_level
                .range((level, 0)..)
                .map(|&(_, w)| w)
                .collect();
            prop_assert_eq!(from, model_from, "tree_neighbors_from({}) order", level);
            prop_assert_eq!(
                flat.nontree_neighbors_at(level),
                self.nontree_bucket(level),
                "nontree bucket {} order",
                level
            );
        }
        prop_assert_eq!(
            flat.nontree_degree(),
            self.nontree.values().sum::<usize>(),
            "nontree degree"
        );
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn flat_vertex_adjacency_equals_btreemap_model(
        ops in proptest::collection::vec((0usize..7, 0usize..W, 0usize..L, 0usize..4), 0..160),
    ) {
        let mut flat = VertexAdj::default();
        let mut model = Model::default();
        for (op, w, level, extra) in ops {
            match op {
                // insert a tree edge (skip if the neighbour already has one)
                0 => {
                    if !model.tree.contains_key(&w) {
                        flat.tree_insert_one(w, level);
                        model.tree_insert(w, level);
                    }
                }
                // remove a tree edge
                1 => {
                    prop_assert_eq!(flat.tree_remove_one(w), model.tree_remove(w));
                }
                // raise a tree edge's level (levels only ever increase)
                2 => {
                    if let Some(&old) = model.tree.get(&w) {
                        let target = old.max(level);
                        prop_assert_eq!(flat.tree_set_level_one(w, target),
                                        model.tree_set_level(w, target));
                    }
                }
                // push a non-tree entry (duplicates allowed)
                3 => {
                    flat.nontree_push_one(w, level);
                    model.nontree_push(w, level);
                }
                // remove one non-tree occurrence
                4 => {
                    prop_assert_eq!(flat.nontree_remove_one(w, level),
                                    model.nontree_remove(w, level));
                }
                // drain a whole bucket (ascending order must agree)
                5 => {
                    prop_assert_eq!(flat.nontree_take_bucket_one(level),
                                    model.nontree_take_bucket(level));
                }
                // replace a bucket with a kept subsequence of itself — the
                // side-drain writeback pattern (strictly ascending input)
                _ => {
                    let bucket = model.nontree_bucket(level);
                    if bucket.windows(2).all(|p| p[0] < p[1]) {
                        let kept: Vec<usize> = bucket
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| (i + extra) % 3 != 0)
                            .map(|(_, &w)| w)
                            .collect();
                        flat.nontree_set_bucket_one(level, kept.clone());
                        model.nontree_set_bucket(level, &kept);
                    }
                }
            }
            model.assert_matches(&flat)?;
        }
    }
}
