//! Property tests for the batch-delete classification pre-pass: the chunked
//! classification (`DynConnectivity::classify_delete_pairs`, exposed as test
//! instrumentation) must equal the sequential classification — and an
//! independently computed model — for arbitrary batches at arbitrary chunk
//! splits, including oversplit, empty and all-duplicate batches.

use std::collections::HashSet;

use dyntree_connectivity::batch::DeleteClass;
use dyntree_connectivity::{DynConnectivity, GraphError};
use proptest::prelude::*;
use ufo_forest::UfoForest;

/// Vertex count of the generated graphs; delete endpoints range past it so
/// out-of-range classifications are exercised.
const N: usize = 16;

/// The classification contract, computed independently of the pre-pass: the
/// class every delete pair must get, derived from the engine's public edge
/// queries plus the in-run duplicate rule.
fn model(g: &DynConnectivity<UfoForest>, pairs: &[(usize, usize)]) -> Vec<DeleteClass> {
    let n = g.len();
    let mut deleted: HashSet<(usize, usize)> = HashSet::new();
    pairs
        .iter()
        .map(|&(u, v)| {
            if u == v {
                DeleteClass::Invalid(GraphError::SelfLoop { v: u })
            } else if u >= n || v >= n {
                let bad = if u >= n { u } else { v };
                DeleteClass::Invalid(GraphError::VertexOutOfRange { v: bad, len: n })
            } else if !g.has_edge(u, v) || !deleted.insert((u.min(v), u.max(v))) {
                DeleteClass::Missing
            } else if g.is_tree_edge(u, v) {
                DeleteClass::Tree
            } else {
                DeleteClass::NonTree
            }
        })
        .collect()
}

fn build(edges: &[(usize, usize)]) -> DynConnectivity<UfoForest> {
    let mut g = DynConnectivity::new(N);
    for &(u, v) in edges {
        let _ = g.try_insert_edge(u, v);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_classification_equals_sequential_at_any_split(
        edges in proptest::collection::vec((0usize..N, 0usize..N), 0..60),
        dels in proptest::collection::vec((0usize..N + 4, 0usize..N + 4), 0..80),
        chunks in 0usize..50,
    ) {
        let g = build(&edges);
        let sequential = g.classify_delete_pairs(&dels, 1);
        let chunked = g.classify_delete_pairs(&dels, chunks);
        prop_assert_eq!(&chunked, &sequential, "chunks={} diverged", chunks);
        prop_assert_eq!(&sequential, &model(&g, &dels), "model disagrees");
    }

    #[test]
    fn all_duplicate_batches_keep_exactly_the_first_live_class(
        u in 0usize..N,
        v in 0usize..N,
        copies in 1usize..30,
        chunks in 0usize..40,
        tree_flag in 0usize..2,
    ) {
        // a graph where (u, v) is live as a tree or a non-tree edge
        let mut g = DynConnectivity::<UfoForest>::new(N);
        let tree = tree_flag == 1;
        if u != v {
            if tree {
                let _ = g.try_insert_edge(u, v);
            } else {
                // connect u-v through a detour first so (u, v) closes a cycle
                let w = (u + 1) % N;
                if w != u && w != v {
                    let _ = g.try_insert_edge(u, w);
                    let _ = g.try_insert_edge(w, v);
                }
                let _ = g.try_insert_edge(u, v);
            }
        }
        let dels = vec![(u, v); copies];
        let classes = g.classify_delete_pairs(&dels, chunks);
        prop_assert_eq!(&classes, &model(&g, &dels));
        if u != v && g.has_edge(u, v) {
            // first occurrence carries the live class, every later one the
            // duplicate rule's Missing
            prop_assert!(matches!(classes[0], DeleteClass::Tree | DeleteClass::NonTree));
            for c in &classes[1..] {
                prop_assert_eq!(*c, DeleteClass::Missing);
            }
        }
    }
}

#[test]
fn empty_batches_classify_to_nothing_at_every_split() {
    let g = build(&[(0, 1), (1, 2), (2, 0)]);
    for chunks in [0, 1, 2, 7, 100] {
        assert_eq!(g.classify_delete_pairs(&[], chunks), Vec::new());
    }
}

#[test]
fn oversplit_batches_classify_identically() {
    // more chunks than pairs: trailing ranges are empty, the concatenation
    // must still cover every pair exactly once
    let g = build(&[(0, 1), (1, 2), (2, 0), (3, 4)]);
    let dels = vec![(0, 1), (2, 0), (5, 5), (3, 4), (0, 99), (2, 0)];
    let reference = g.classify_delete_pairs(&dels, 1);
    assert_eq!(
        reference,
        vec![
            DeleteClass::Tree,
            DeleteClass::NonTree,
            DeleteClass::Invalid(GraphError::SelfLoop { v: 5 }),
            DeleteClass::Tree,
            DeleteClass::Invalid(GraphError::VertexOutOfRange { v: 99, len: N }),
            DeleteClass::Missing, // duplicate of the already-deleted (2, 0)
        ]
    );
    for chunks in [2, 3, 6, 7, 64] {
        assert_eq!(g.classify_delete_pairs(&dels, chunks), reference);
    }
}
