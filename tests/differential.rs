//! Cross-structure differential tests: every dynamic-tree implementation in
//! the workspace is driven with the same random operation sequences and must
//! agree with the naive oracle on every query it supports.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ufo_trees::connectivity::{DynConnectivity, SpanningBackend};
use ufo_trees::seqs::TreapSequence;
use ufo_trees::workloads::{self, SyntheticTree};
use ufo_trees::{EulerTourForest, LinkCutForest, NaiveForest, TopologyForest, UfoForest};

/// Drives all structures with `steps` random link/cut operations over `n`
/// vertices and checks connectivity, path and subtree queries after every
/// operation.
fn random_ops_agree(n: usize, steps: usize, seed: u64, check_every: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut naive: NaiveForest = NaiveForest::new(n);
    let mut ufo: UfoForest = UfoForest::new(n);
    let mut topo: TopologyForest = TopologyForest::new(n);
    let mut lct: LinkCutForest = LinkCutForest::new(n);
    let mut ett = EulerTourForest::<TreapSequence>::new(n);

    for v in 0..n {
        let w = rng.random_range(-50..50);
        naive.set_weight(v, w);
        ufo.set_weight(v, w);
        topo.set_weight(v, w);
        lct.set_weight(v, w);
        ett.set_weight(v, w);
    }

    let mut live_edges: Vec<(usize, usize)> = Vec::new();
    for step in 0..steps {
        let insert = live_edges.is_empty() || rng.random_bool(0.6);
        if insert {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            let expected = naive.link(u, v);
            assert_eq!(ufo.link(u, v), expected, "ufo link ({u},{v}) step {step}");
            assert_eq!(topo.link(u, v), expected, "topo link ({u},{v}) step {step}");
            assert_eq!(lct.link(u, v), expected, "lct link ({u},{v}) step {step}");
            assert_eq!(ett.link(u, v), expected, "ett link ({u},{v}) step {step}");
            if expected {
                live_edges.push((u, v));
            }
        } else {
            let idx = rng.random_range(0..live_edges.len());
            let (u, v) = live_edges.swap_remove(idx);
            assert!(naive.cut(u, v));
            assert!(ufo.cut(u, v), "ufo cut ({u},{v}) step {step}");
            assert!(topo.cut(u, v), "topo cut ({u},{v}) step {step}");
            assert!(lct.cut(u, v), "lct cut ({u},{v}) step {step}");
            assert!(ett.cut(u, v), "ett cut ({u},{v}) step {step}");
        }

        if step % check_every != 0 {
            continue;
        }
        ufo.engine().check_invariants().expect("ufo invariants");
        topo.engine().check_invariants().expect("topo invariants");

        for _ in 0..8 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let conn = naive.connected(a, b);
            assert_eq!(
                ufo.connected(a, b),
                conn,
                "ufo connected({a},{b}) step {step}"
            );
            assert_eq!(
                topo.connected(a, b),
                conn,
                "topo connected({a},{b}) step {step}"
            );
            assert_eq!(
                lct.connected(a, b),
                conn,
                "lct connected({a},{b}) step {step}"
            );
            assert_eq!(
                ett.connected(a, b),
                conn,
                "ett connected({a},{b}) step {step}"
            );

            assert_eq!(
                ufo.path_sum(a, b),
                naive.path_sum(a, b),
                "ufo path_sum({a},{b}) step {step}"
            );
            assert_eq!(
                ufo.path_max(a, b),
                naive.path_max(a, b),
                "ufo path_max({a},{b}) step {step}"
            );
            assert_eq!(
                ufo.path_min(a, b),
                naive.path_min(a, b),
                "ufo path_min({a},{b}) step {step}"
            );
            assert_eq!(
                ufo.path_length(a, b),
                naive.path_length(a, b).map(|x| x as u64),
                "ufo path_length({a},{b}) step {step}"
            );
            // The ternarized topology baseline answers vertex-weight path
            // aggregates exactly only when every interior vertex of the path
            // has degree <= 3: a degree >= 4 vertex can be entered and left
            // through edges hosted on two extra slots, and the underlying
            // path between them misses the weight-carrying primary slot (see
            // the `claim_slot` docs in `dyntree_ternary`).  UFO trees need no
            // ternarization, which is why their comparison is unconditional.
            if let Some(p) = naive.path(a, b) {
                if p.iter()
                    .skip(1)
                    .rev()
                    .skip(1)
                    .all(|&x| naive.degree(x) <= 3)
                {
                    assert_eq!(
                        topo.path_sum(a, b),
                        naive.path_sum(a, b),
                        "topo path_sum({a},{b}) step {step}"
                    );
                }
            } else {
                assert_eq!(
                    topo.path_sum(a, b),
                    None,
                    "topo path_sum({a},{b}) step {step}"
                );
            }
            assert_eq!(
                lct.path_sum(a, b),
                naive.path_sum(a, b),
                "lct path_sum({a},{b}) step {step}"
            );
            assert_eq!(
                lct.path_max(a, b),
                naive.path_max(a, b),
                "lct path_max({a},{b}) step {step}"
            );
        }

        // subtree queries over random live edges
        if !live_edges.is_empty() {
            for _ in 0..4 {
                let (u, v) = live_edges[rng.random_range(0..live_edges.len())];
                assert_eq!(
                    ufo.subtree_sum(u, v),
                    naive.subtree_sum(u, v),
                    "ufo subtree({u},{v}) step {step}"
                );
                assert_eq!(
                    ufo.subtree_size(u, v),
                    naive.subtree_size(u, v).map(|x| x as u64),
                    "ufo subtree_size({u},{v}) step {step}"
                );
                assert_eq!(
                    ufo.subtree_max(u, v),
                    naive.subtree_max(u, v),
                    "ufo subtree_max({u},{v}) step {step}"
                );
                assert_eq!(
                    ett.subtree_sum(u, v),
                    naive.subtree_sum(u, v),
                    "ett subtree({u},{v}) step {step}"
                );
            }
        }

        // diameter + component size spot checks
        let a = rng.random_range(0..n);
        assert_eq!(
            ufo.component_size(a),
            naive.component_size(a) as u64,
            "component_size({a}) step {step}"
        );
        assert_eq!(
            ufo.component_diameter(a),
            naive.component_diameter(a) as u64,
            "component_diameter({a}) step {step}"
        );
    }
}

#[test]
fn differential_small_dense_churn() {
    random_ops_agree(16, 300, 1, 1);
}

#[test]
fn differential_medium_forest() {
    random_ops_agree(60, 500, 2, 5);
}

#[test]
fn differential_larger_sparse() {
    random_ops_agree(200, 600, 3, 20);
}

#[test]
fn synthetic_families_build_and_agree() {
    for family in SyntheticTree::ALL {
        let forest = family.generate(200, 17);
        let n = forest.n;
        let mut rng = StdRng::seed_from_u64(23);
        let mut naive: NaiveForest = NaiveForest::new(n);
        let mut ufo: UfoForest = UfoForest::new(n);
        let mut lct: LinkCutForest = LinkCutForest::new(n);
        for v in 0..n {
            let w = rng.random_range(0..1000);
            naive.set_weight(v, w);
            ufo.set_weight(v, w);
            lct.set_weight(v, w);
        }
        for &(u, v) in &forest.edges {
            assert!(naive.link(u, v));
            assert!(ufo.link(u, v), "{:?}: ufo link failed", family);
            assert!(lct.link(u, v), "{:?}: lct link failed", family);
        }
        ufo.engine()
            .check_invariants()
            .unwrap_or_else(|e| panic!("{:?}: {}", family, e));
        for _ in 0..50 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(
                ufo.path_sum(a, b),
                naive.path_sum(a, b),
                "{:?} path_sum({a},{b})",
                family
            );
            assert_eq!(
                lct.path_sum(a, b),
                naive.path_sum(a, b),
                "{:?} lct path_sum({a},{b})",
                family
            );
        }
        assert_eq!(
            ufo.component_diameter(forest.edges[0].0),
            naive.component_diameter(forest.edges[0].0) as u64,
            "{:?} diameter",
            family
        );
        // tear the tree down in random order, checking connectivity afterwards
        let mut edges = forest.edges.clone();
        edges.shuffle(&mut rng);
        for &(u, v) in edges.iter().take(n / 2) {
            assert!(ufo.cut(u, v), "{:?}: cut failed", family);
            assert!(naive.cut(u, v));
        }
        ufo.engine()
            .check_invariants()
            .unwrap_or_else(|e| panic!("{:?} after cuts: {}", family, e));
        for _ in 0..50 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(
                ufo.connected(a, b),
                naive.connected(a, b),
                "{:?} connected({a},{b})",
                family
            );
        }
    }
}

#[test]
fn batch_interface_matches_sequential() {
    let n = 500;
    let tree = workloads::random_tree(n, 77);
    let mut batched: UfoForest = UfoForest::new(n);
    let mut sequential: UfoForest = UfoForest::new(n);
    for chunk in tree.edges.chunks(64) {
        batched.batch_link(chunk);
        for &(u, v) in chunk {
            sequential.link(u, v);
        }
    }
    assert_eq!(batched.num_edges(), sequential.num_edges());
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        assert_eq!(batched.connected(a, b), sequential.connected(a, b));
    }
    batched.engine().check_invariants().unwrap();
}

/// A deliberately simple dynamic-connectivity oracle: an adjacency-set graph
/// answering every query by BFS, plus an incrementally rebuilt DSU for
/// component counts.
struct GraphOracle {
    adj: Vec<std::collections::HashSet<usize>>,
}

impl GraphOracle {
    fn new(n: usize) -> Self {
        Self {
            adj: vec![std::collections::HashSet::new(); n],
        }
    }

    fn insert(&mut self, u: usize, v: usize) -> bool {
        if u == v || self.adj[u].contains(&v) {
            return false;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        true
    }

    fn delete(&mut self, u: usize, v: usize) -> bool {
        if !self.adj[u].contains(&v) {
            return false;
        }
        self.adj[u].remove(&v);
        self.adj[v].remove(&u);
        true
    }

    fn connected(&self, u: usize, v: usize) -> bool {
        if u == v {
            return true;
        }
        let mut seen = std::collections::HashSet::from([u]);
        let mut queue = std::collections::VecDeque::from([u]);
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x] {
                if y == v {
                    return true;
                }
                if seen.insert(y) {
                    queue.push_back(y);
                }
            }
        }
        false
    }

    fn component_count(&self) -> usize {
        let n = self.adj.len();
        let mut dsu = ufo_trees::primitives::Dsu::new(n);
        for u in 0..n {
            for &v in &self.adj[u] {
                if u < v {
                    dsu.union(u, v);
                }
            }
        }
        dsu.components()
    }

    fn component_size(&self, v: usize) -> usize {
        let mut seen = std::collections::HashSet::from([v]);
        let mut queue = std::collections::VecDeque::from([v]);
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x] {
                if seen.insert(y) {
                    queue.push_back(y);
                }
            }
        }
        seen.len()
    }
}

/// Drives a [`DynConnectivity`] engine and the graph oracle through the same
/// randomized insert/delete/query trace over a general (cyclic) graph.
fn connectivity_agrees<B: SpanningBackend>(n: usize, steps: usize, seed: u64, check_every: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine: DynConnectivity<B> = DynConnectivity::new(n);
    let mut oracle = GraphOracle::new(n);
    let mut live: Vec<(usize, usize)> = Vec::new();

    for step in 0..steps {
        let insert = live.is_empty() || rng.random_bool(0.55);
        if insert {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            let expected = oracle.insert(u, v);
            assert_eq!(
                engine.insert_edge(u, v),
                expected,
                "[{}] insert ({u},{v}) step {step}",
                B::NAME
            );
            if expected {
                live.push((u.min(v), u.max(v)));
            }
        } else {
            let idx = rng.random_range(0..live.len());
            let (u, v) = live.swap_remove(idx);
            assert!(oracle.delete(u, v));
            assert!(
                engine.delete_edge(u, v),
                "[{}] delete ({u},{v}) step {step}",
                B::NAME
            );
        }

        // connectivity spot checks after every operation
        for _ in 0..4 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(
                engine.connected(a, b),
                oracle.connected(a, b),
                "[{}] connected({a},{b}) step {step}",
                B::NAME
            );
        }

        if step % check_every == 0 {
            assert_eq!(
                engine.component_count(),
                oracle.component_count(),
                "[{}] component count step {step}",
                B::NAME
            );
            let a = rng.random_range(0..n);
            assert_eq!(
                engine.component_size(a),
                oracle.component_size(a) as u64,
                "[{}] component_size({a}) step {step}",
                B::NAME
            );
            engine
                .check_invariants()
                .unwrap_or_else(|e| panic!("[{}] step {step}: {e}", B::NAME));
        }
    }
    assert_eq!(engine.num_edges(), live.len());
}

#[test]
fn connectivity_differential_ufo_10k() {
    connectivity_agrees::<UfoForest>(48, 10_000, 11, 97);
}

#[test]
fn connectivity_differential_linkcut_10k() {
    connectivity_agrees::<LinkCutForest>(48, 10_000, 12, 97);
}

#[test]
fn connectivity_differential_euler_10k() {
    connectivity_agrees::<EulerTourForest<TreapSequence>>(48, 10_000, 13, 97);
}

#[test]
fn connectivity_differential_naive_backend() {
    connectivity_agrees::<NaiveForest>(32, 2_000, 14, 53);
}

#[test]
fn connectivity_differential_dense_small() {
    // dense churn on a tiny vertex set exercises deep level promotions
    connectivity_agrees::<UfoForest>(10, 4_000, 15, 29);
    connectivity_agrees::<LinkCutForest>(10, 4_000, 16, 29);
}

#[test]
fn connectivity_batch_matches_oracle_on_graph_workloads() {
    use ufo_trees::workloads::temporal_graph;
    let graph = temporal_graph(400, 3, 21);
    let mut engine: DynConnectivity<UfoForest> = DynConnectivity::new(graph.n);
    let mut oracle = GraphOracle::new(graph.n);
    for chunk in graph.edges.chunks(64) {
        engine.batch_insert(chunk);
        for &(u, v) in chunk {
            oracle.insert(u, v);
        }
        assert_eq!(engine.component_count(), oracle.component_count());
    }
    // tear down in batches
    for chunk in graph.edges.chunks(128) {
        engine.batch_delete(chunk);
        for &(u, v) in chunk {
            oracle.delete(u, v);
        }
        assert_eq!(engine.component_count(), oracle.component_count());
    }
    assert_eq!(engine.num_edges(), 0);
}

#[test]
fn nearest_marked_agrees_with_oracle() {
    let n = 120;
    let tree = workloads::random_tree_degree3(n, 5);
    let mut rng = StdRng::seed_from_u64(9);
    let mut naive: NaiveForest = NaiveForest::new(n);
    let mut ufo: UfoForest = UfoForest::new(n);
    for &(u, v) in &tree.edges {
        naive.link(u, v);
        ufo.link(u, v);
    }
    for _ in 0..10 {
        let m = rng.random_range(0..n);
        naive.set_marked(m, true);
        ufo.set_marked(m, true);
    }
    for v in 0..n {
        assert_eq!(
            ufo.nearest_marked_distance(v),
            naive.nearest_marked_distance(v).map(|d| d as u64),
            "nearest marked from {v}"
        );
    }
}
