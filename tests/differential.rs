//! Cross-structure differential tests: every dynamic-tree implementation in
//! the workspace is driven with the same random operation sequences and must
//! agree with the naive oracle on every query it supports.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ufo_trees::seqs::TreapSequence;
use ufo_trees::workloads::{self, SyntheticTree};
use ufo_trees::{EulerTourForest, LinkCutForest, NaiveForest, TopologyForest, UfoForest};

/// Drives all structures with `steps` random link/cut operations over `n`
/// vertices and checks connectivity, path and subtree queries after every
/// operation.
fn random_ops_agree(n: usize, steps: usize, seed: u64, check_every: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut naive = NaiveForest::new(n);
    let mut ufo = UfoForest::new(n);
    let mut topo = TopologyForest::new(n);
    let mut lct = LinkCutForest::new(n);
    let mut ett = EulerTourForest::<TreapSequence>::new(n);

    for v in 0..n {
        let w = rng.random_range(-50..50);
        naive.set_weight(v, w);
        ufo.set_weight(v, w);
        topo.set_weight(v, w);
        lct.set_weight(v, w);
        ett.set_weight(v, w);
    }

    let mut live_edges: Vec<(usize, usize)> = Vec::new();
    for step in 0..steps {
        let insert = live_edges.is_empty() || rng.random_bool(0.6);
        if insert {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            let expected = naive.link(u, v);
            assert_eq!(ufo.link(u, v), expected, "ufo link ({u},{v}) step {step}");
            assert_eq!(topo.link(u, v), expected, "topo link ({u},{v}) step {step}");
            assert_eq!(lct.link(u, v), expected, "lct link ({u},{v}) step {step}");
            assert_eq!(ett.link(u, v), expected, "ett link ({u},{v}) step {step}");
            if expected {
                live_edges.push((u, v));
            }
        } else {
            let idx = rng.random_range(0..live_edges.len());
            let (u, v) = live_edges.swap_remove(idx);
            assert!(naive.cut(u, v));
            assert!(ufo.cut(u, v), "ufo cut ({u},{v}) step {step}");
            assert!(topo.cut(u, v), "topo cut ({u},{v}) step {step}");
            assert!(lct.cut(u, v), "lct cut ({u},{v}) step {step}");
            assert!(ett.cut(u, v), "ett cut ({u},{v}) step {step}");
        }

        if step % check_every != 0 {
            continue;
        }
        ufo.engine().check_invariants().expect("ufo invariants");
        topo.engine().check_invariants().expect("topo invariants");

        for _ in 0..8 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let conn = naive.connected(a, b);
            assert_eq!(ufo.connected(a, b), conn, "ufo connected({a},{b}) step {step}");
            assert_eq!(topo.connected(a, b), conn, "topo connected({a},{b}) step {step}");
            assert_eq!(lct.connected(a, b), conn, "lct connected({a},{b}) step {step}");
            assert_eq!(ett.connected(a, b), conn, "ett connected({a},{b}) step {step}");

            assert_eq!(ufo.path_sum(a, b), naive.path_sum(a, b), "ufo path_sum({a},{b}) step {step}");
            assert_eq!(ufo.path_max(a, b), naive.path_max(a, b), "ufo path_max({a},{b}) step {step}");
            assert_eq!(ufo.path_min(a, b), naive.path_min(a, b), "ufo path_min({a},{b}) step {step}");
            assert_eq!(
                ufo.path_length(a, b),
                naive.path_length(a, b).map(|x| x as u64),
                "ufo path_length({a},{b}) step {step}"
            );
            assert_eq!(topo.path_sum(a, b), naive.path_sum(a, b), "topo path_sum({a},{b}) step {step}");
            assert_eq!(lct.path_sum(a, b), naive.path_sum(a, b), "lct path_sum({a},{b}) step {step}");
            assert_eq!(lct.path_max(a, b), naive.path_max(a, b), "lct path_max({a},{b}) step {step}");
        }

        // subtree queries over random live edges
        if !live_edges.is_empty() {
            for _ in 0..4 {
                let (u, v) = live_edges[rng.random_range(0..live_edges.len())];
                assert_eq!(ufo.subtree_sum(u, v), naive.subtree_sum(u, v), "ufo subtree({u},{v}) step {step}");
                assert_eq!(
                    ufo.subtree_size(u, v),
                    naive.subtree_size(u, v).map(|x| x as u64),
                    "ufo subtree_size({u},{v}) step {step}"
                );
                assert_eq!(ufo.subtree_max(u, v), naive.subtree_max(u, v), "ufo subtree_max({u},{v}) step {step}");
                assert_eq!(ett.subtree_sum(u, v), naive.subtree_sum(u, v), "ett subtree({u},{v}) step {step}");
            }
        }

        // diameter + component size spot checks
        let a = rng.random_range(0..n);
        assert_eq!(
            ufo.component_size(a),
            naive.component_size(a) as u64,
            "component_size({a}) step {step}"
        );
        assert_eq!(
            ufo.component_diameter(a),
            naive.component_diameter(a) as u64,
            "component_diameter({a}) step {step}"
        );
    }
}

#[test]
fn differential_small_dense_churn() {
    random_ops_agree(16, 300, 1, 1);
}

#[test]
fn differential_medium_forest() {
    random_ops_agree(60, 500, 2, 5);
}

#[test]
fn differential_larger_sparse() {
    random_ops_agree(200, 600, 3, 20);
}

#[test]
fn synthetic_families_build_and_agree() {
    for family in SyntheticTree::ALL {
        let forest = family.generate(200, 17);
        let n = forest.n;
        let mut rng = StdRng::seed_from_u64(23);
        let mut naive = NaiveForest::new(n);
        let mut ufo = UfoForest::new(n);
        let mut lct = LinkCutForest::new(n);
        for v in 0..n {
            let w = rng.random_range(0..1000);
            naive.set_weight(v, w);
            ufo.set_weight(v, w);
            lct.set_weight(v, w);
        }
        for &(u, v) in &forest.edges {
            assert!(naive.link(u, v));
            assert!(ufo.link(u, v), "{:?}: ufo link failed", family);
            assert!(lct.link(u, v), "{:?}: lct link failed", family);
        }
        ufo.engine()
            .check_invariants()
            .unwrap_or_else(|e| panic!("{:?}: {}", family, e));
        for _ in 0..50 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(ufo.path_sum(a, b), naive.path_sum(a, b), "{:?} path_sum({a},{b})", family);
            assert_eq!(lct.path_sum(a, b), naive.path_sum(a, b), "{:?} lct path_sum({a},{b})", family);
        }
        assert_eq!(
            ufo.component_diameter(forest.edges[0].0),
            naive.component_diameter(forest.edges[0].0) as u64,
            "{:?} diameter",
            family
        );
        // tear the tree down in random order, checking connectivity afterwards
        let mut edges = forest.edges.clone();
        edges.shuffle(&mut rng);
        for &(u, v) in edges.iter().take(n / 2) {
            assert!(ufo.cut(u, v), "{:?}: cut failed", family);
            assert!(naive.cut(u, v));
        }
        ufo.engine()
            .check_invariants()
            .unwrap_or_else(|e| panic!("{:?} after cuts: {}", family, e));
        for _ in 0..50 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            assert_eq!(ufo.connected(a, b), naive.connected(a, b), "{:?} connected({a},{b})", family);
        }
    }
}

#[test]
fn batch_interface_matches_sequential() {
    let n = 500;
    let tree = workloads::random_tree(n, 77);
    let mut batched = UfoForest::new(n);
    let mut sequential = UfoForest::new(n);
    for chunk in tree.edges.chunks(64) {
        batched.batch_link(chunk);
        for &(u, v) in chunk {
            sequential.link(u, v);
        }
    }
    assert_eq!(batched.num_edges(), sequential.num_edges());
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        assert_eq!(batched.connected(a, b), sequential.connected(a, b));
    }
    batched.engine().check_invariants().unwrap();
}

#[test]
fn nearest_marked_agrees_with_oracle() {
    let n = 120;
    let tree = workloads::random_tree_degree3(n, 5);
    let mut rng = StdRng::seed_from_u64(9);
    let mut naive = NaiveForest::new(n);
    let mut ufo = UfoForest::new(n);
    for &(u, v) in &tree.edges {
        naive.link(u, v);
        ufo.link(u, v);
    }
    for _ in 0..10 {
        let m = rng.random_range(0..n);
        naive.set_marked(m, true);
        ufo.set_marked(m, true);
    }
    for v in 0..n {
        assert_eq!(
            ufo.nearest_marked_distance(v),
            naive.nearest_marked_distance(v).map(|d| d as u64),
            "nearest marked from {v}"
        );
    }
}
