//! Property-based tests: arbitrary operation sequences preserve the
//! contraction-forest invariants and agree with the oracle.

use proptest::prelude::*;
use ufo_trees::{LinkCutForest, NaiveForest, UfoForest};

/// A randomly generated operation on a small vertex universe.
#[derive(Clone, Debug)]
enum Op {
    Link(usize, usize),
    Cut(usize, usize),
    SetWeight(usize, i64),
    QueryPath(usize, usize),
    QuerySubtree(usize, usize),
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n, 0..n).prop_map(|(u, v)| Op::Link(u, v)),
        (0..n, 0..n).prop_map(|(u, v)| Op::Cut(u, v)),
        (0..n, -100i64..100).prop_map(|(v, w)| Op::SetWeight(v, w)),
        (0..n, 0..n).prop_map(|(u, v)| Op::QueryPath(u, v)),
        (0..n, 0..n).prop_map(|(u, v)| Op::QuerySubtree(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ufo_agrees_with_oracle_on_arbitrary_programs(
        ops in proptest::collection::vec(op_strategy(12), 1..120)
    ) {
        let n = 12;
        let mut naive = NaiveForest::new(n);
        let mut ufo = UfoForest::new(n);
        let mut lct = LinkCutForest::new(n);
        for op in ops {
            match op {
                Op::Link(u, v) => {
                    let e = naive.link(u, v);
                    prop_assert_eq!(ufo.link(u, v), e);
                    prop_assert_eq!(lct.link(u, v), e);
                }
                Op::Cut(u, v) => {
                    let e = naive.cut(u, v);
                    prop_assert_eq!(ufo.cut(u, v), e);
                    prop_assert_eq!(lct.cut(u, v), e);
                }
                Op::SetWeight(v, w) => {
                    naive.set_weight(v, w);
                    ufo.set_weight(v, w);
                    lct.set_weight(v, w);
                }
                Op::QueryPath(u, v) => {
                    prop_assert_eq!(ufo.path_sum(u, v), naive.path_sum(u, v));
                    prop_assert_eq!(ufo.path_min(u, v), naive.path_min(u, v));
                    prop_assert_eq!(lct.path_sum(u, v), naive.path_sum(u, v));
                }
                Op::QuerySubtree(v, p) => {
                    prop_assert_eq!(ufo.subtree_sum(v, p), naive.subtree_sum(v, p));
                    prop_assert_eq!(
                        ufo.subtree_size(v, p),
                        naive.subtree_size(v, p).map(|x| x as u64)
                    );
                }
            }
        }
        prop_assert!(ufo.engine().check_invariants().is_ok());
    }

    #[test]
    fn ufo_hierarchy_height_is_bounded(
        edges in proptest::collection::vec((0usize..64, 0usize..64), 0..63)
    ) {
        let n = 64;
        let mut ufo = UfoForest::new(n);
        let mut inserted = 0u32;
        for (u, v) in edges {
            if ufo.link(u, v) {
                inserted += 1;
            }
        }
        // Theorem 4.1: height is O(log n); log_{6/5}(64) ≈ 23, allow slack.
        for v in 0..n {
            prop_assert!(ufo.engine().height(v) <= 40, "height {} too large", ufo.engine().height(v));
        }
        prop_assert!(ufo.engine().check_invariants().is_ok());
        prop_assert_eq!(ufo.num_edges() as u32, inserted);
    }

    #[test]
    fn batch_and_sequential_builds_are_equivalent(
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
        batch in 1usize..16
    ) {
        let n = 40;
        let mut a = UfoForest::new(n);
        let mut b = UfoForest::new(n);
        for (u, v) in &edges {
            a.link(*u, *v);
        }
        for chunk in edges.chunks(batch) {
            b.batch_link(chunk);
        }
        prop_assert_eq!(a.num_edges(), b.num_edges());
        for u in 0..n {
            for v in (u + 1)..n {
                prop_assert_eq!(a.connected(u, v), b.connected(u, v));
            }
        }
    }
}
