//! Property-based tests: arbitrary operation sequences preserve the
//! contraction-forest invariants and agree with the oracle, and arbitrary
//! batch programs preserve the connectivity engine's spanning-forest
//! invariant.

use proptest::prelude::*;
use ufo_trees::connectivity::DynConnectivity;
use ufo_trees::{LinkCutForest, NaiveForest, UfoForest};

/// A randomly generated operation on a small vertex universe.
#[derive(Clone, Debug)]
enum Op {
    Link(usize, usize),
    Cut(usize, usize),
    SetWeight(usize, i64),
    QueryPath(usize, usize),
    QuerySubtree(usize, usize),
}

/// Object-safe probe over [`DynConnectivity`] engines with different
/// backends, so one proptest can sweep them uniformly.
trait ConnectivityProbe {
    fn spanning_size(&self) -> usize;
    fn components(&self) -> usize;
    fn invariants_ok(&mut self) -> bool;
}

impl<B: ufo_trees::SpanningBackend> ConnectivityProbe for DynConnectivity<B> {
    fn spanning_size(&self) -> usize {
        self.spanning_forest_size()
    }
    fn components(&self) -> usize {
        self.component_count()
    }
    fn invariants_ok(&mut self) -> bool {
        self.check_invariants().is_ok()
    }
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n, 0..n).prop_map(|(u, v)| Op::Link(u, v)),
        (0..n, 0..n).prop_map(|(u, v)| Op::Cut(u, v)),
        (0..n, -100i64..100).prop_map(|(v, w)| Op::SetWeight(v, w)),
        (0..n, 0..n).prop_map(|(u, v)| Op::QueryPath(u, v)),
        (0..n, 0..n).prop_map(|(u, v)| Op::QuerySubtree(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ufo_agrees_with_oracle_on_arbitrary_programs(
        ops in proptest::collection::vec(op_strategy(12), 1..120)
    ) {
        let n = 12;
        let mut naive: NaiveForest = NaiveForest::new(n);
        let mut ufo: UfoForest = UfoForest::new(n);
        let mut lct: LinkCutForest = LinkCutForest::new(n);
        for op in ops {
            match op {
                Op::Link(u, v) => {
                    let e = naive.link(u, v);
                    prop_assert_eq!(ufo.link(u, v), e);
                    prop_assert_eq!(lct.link(u, v), e);
                }
                Op::Cut(u, v) => {
                    let e = naive.cut(u, v);
                    prop_assert_eq!(ufo.cut(u, v), e);
                    prop_assert_eq!(lct.cut(u, v), e);
                }
                Op::SetWeight(v, w) => {
                    naive.set_weight(v, w);
                    ufo.set_weight(v, w);
                    lct.set_weight(v, w);
                }
                Op::QueryPath(u, v) => {
                    prop_assert_eq!(ufo.path_sum(u, v), naive.path_sum(u, v));
                    prop_assert_eq!(ufo.path_min(u, v), naive.path_min(u, v));
                    prop_assert_eq!(lct.path_sum(u, v), naive.path_sum(u, v));
                }
                Op::QuerySubtree(v, p) => {
                    prop_assert_eq!(ufo.subtree_sum(v, p), naive.subtree_sum(v, p));
                    prop_assert_eq!(
                        ufo.subtree_size(v, p),
                        naive.subtree_size(v, p).map(|x| x as u64)
                    );
                }
            }
        }
        prop_assert!(ufo.engine().check_invariants().is_ok());
    }

    #[test]
    fn ufo_hierarchy_height_is_bounded(
        edges in proptest::collection::vec((0usize..64, 0usize..64), 0..63)
    ) {
        let n = 64;
        let mut ufo: UfoForest = UfoForest::new(n);
        let mut inserted = 0u32;
        for (u, v) in edges {
            if ufo.link(u, v) {
                inserted += 1;
            }
        }
        // Theorem 4.1: height is O(log n); log_{6/5}(64) ≈ 23, allow slack.
        for v in 0..n {
            prop_assert!(ufo.engine().height(v) <= 40, "height {} too large", ufo.engine().height(v));
        }
        prop_assert!(ufo.engine().check_invariants().is_ok());
        prop_assert_eq!(ufo.num_edges() as u32, inserted);
    }

    #[test]
    fn connectivity_spanning_forest_matches_component_count(
        batches in proptest::collection::vec(
            (proptest::collection::vec((0usize..24, 0usize..24), 1..40), 0usize..2),
            1..12
        )
    ) {
        // Arbitrary batch programs: each entry is a batch of edges plus a
        // discriminant choosing insert (0) or delete (1).  After *every*
        // batch, the engine must satisfy
        //     spanning_forest_size == n - component_count
        // and the spanning forest must actually be a forest (engine
        // invariants), for a UFO backend and the naive oracle backend alike.
        let n = 24;
        let mut ufo: DynConnectivity<UfoForest> = DynConnectivity::new(n);
        let mut naive: DynConnectivity<NaiveForest> = DynConnectivity::new(n);
        for (batch, kind) in batches {
            if kind == 0 {
                let a = ufo.batch_insert(&batch);
                let b = naive.batch_insert(&batch);
                prop_assert_eq!(a, b);
            } else {
                let a = ufo.batch_delete(&batch);
                let b = naive.batch_delete(&batch);
                prop_assert_eq!(a, b);
            }
            for g in [&mut ufo as &mut dyn ConnectivityProbe, &mut naive] {
                prop_assert_eq!(
                    g.spanning_size(),
                    n - g.components(),
                    "spanning forest size must equal n - component count"
                );
                prop_assert!(g.invariants_ok());
            }
            prop_assert_eq!(ufo.component_count(), naive.component_count());
            prop_assert_eq!(ufo.num_edges(), naive.num_edges());
        }
    }

    #[test]
    fn batch_and_sequential_builds_are_equivalent(
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
        batch in 1usize..16
    ) {
        let n = 40;
        let mut a: UfoForest = UfoForest::new(n);
        let mut b: UfoForest = UfoForest::new(n);
        for (u, v) in &edges {
            a.link(*u, *v);
        }
        for chunk in edges.chunks(batch) {
            b.batch_link(chunk);
        }
        prop_assert_eq!(a.num_edges(), b.num_edges());
        for u in 0..n {
            for v in (u + 1)..n {
                prop_assert_eq!(a.connected(u, v), b.connected(u, v));
            }
        }
    }
}
