//! Weighted differential tests: random link / cut / set-weight / query
//! programs must produce identical [`Agg`] answers across every forest that
//! claims the shared aggregation surface, for more than one monoid — plus
//! the overflow regression pinning saturating behaviour at `i64::MAX`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ufo_trees::{
    Agg, EulerTourForest, LinkCutForest, MaxEdge, NaiveForest, SumMinMax, TopologyForest,
    UfoForest, WeightedId,
};

use ufo_trees::seqs::TreapSequence;

/// One random weighted operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Link(usize, usize),
    Cut(usize, usize),
    SetWeight(usize, i64),
    QueryPath(usize, usize),
    QuerySubtree(usize, usize),
    QueryComponent(usize),
}

fn random_program(n: usize, len: usize, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let (u, v) = (rng.random_range(0..n), rng.random_range(0..n));
            match rng.random_range(0..10u32) {
                0..=2 => Op::Link(u, v),
                3 => Op::Cut(u, v),
                4..=5 => Op::SetWeight(u, rng.random_range(-1000..=1000)),
                6..=7 => Op::QueryPath(u, v),
                8 => Op::QuerySubtree(u, v),
                _ => Op::QueryComponent(u),
            }
        })
        .collect()
}

/// Runs a random program across UFO, link-cut, Euler-tour and naive forests
/// (four backends), comparing every aggregate through the shared `Agg<M>`
/// API with `M = SumMinMax`.  Link-cut trees answer the path surface only
/// (no subtree/component aggregates — Table 1).
#[test]
fn four_backends_agree_on_weighted_programs() {
    let n = 28;
    for seed in 0..6u64 {
        let mut naive: NaiveForest = NaiveForest::new(n);
        let mut ufo: UfoForest = UfoForest::new(n);
        let mut lct: LinkCutForest = LinkCutForest::new(n);
        let mut ett: EulerTourForest<TreapSequence> = EulerTourForest::new(n);
        for (step, op) in random_program(n, 420, 0xd1ff + seed)
            .into_iter()
            .enumerate()
        {
            match op {
                Op::Link(u, v) => {
                    let expect = naive.link(u, v);
                    assert_eq!(ufo.link(u, v), expect, "seed {seed} step {step} link");
                    assert_eq!(lct.link(u, v), expect, "seed {seed} step {step} lct link");
                    assert_eq!(ett.link(u, v), expect, "seed {seed} step {step} ett link");
                }
                Op::Cut(u, v) => {
                    let expect = naive.cut(u, v);
                    assert_eq!(ufo.cut(u, v), expect, "seed {seed} step {step} cut");
                    assert_eq!(lct.cut(u, v), expect);
                    assert_eq!(ett.cut(u, v), expect);
                }
                Op::SetWeight(v, w) => {
                    naive.set_weight(v, w);
                    ufo.set_weight(v, w);
                    lct.set_weight(v, w);
                    ett.set_weight(v, w);
                }
                Op::QueryPath(u, v) => {
                    let expect: Option<Agg<SumMinMax>> = naive.path_aggregate(u, v);
                    assert_eq!(
                        ufo.path_aggregate(u, v),
                        expect,
                        "seed {seed} step {step} ufo path {u}-{v}"
                    );
                    assert_eq!(
                        lct.path_aggregate(u, v),
                        expect,
                        "seed {seed} step {step} lct path {u}-{v}"
                    );
                    assert_eq!(
                        ett.path_aggregate(u, v),
                        expect,
                        "seed {seed} step {step} ett path {u}-{v}"
                    );
                }
                Op::QuerySubtree(v, p) => {
                    let expect = naive.subtree_aggregate(v, p);
                    assert_eq!(
                        ufo.subtree_aggregate(v, p),
                        expect,
                        "seed {seed} step {step} ufo subtree {v}|{p}"
                    );
                    assert_eq!(
                        ett.subtree_aggregate(v, p),
                        expect,
                        "seed {seed} step {step} ett subtree {v}|{p}"
                    );
                }
                Op::QueryComponent(v) => {
                    let expect = naive.component_aggregate(v);
                    assert_eq!(
                        ufo.component_aggregate(v),
                        expect,
                        "seed {seed} step {step} ufo component {v}"
                    );
                    assert_eq!(
                        ett.component_aggregate(v),
                        expect,
                        "seed {seed} step {step} ett component {v}"
                    );
                }
            }
        }
    }
}

/// The same differential under a *different* monoid: the `MaxEdge` argmax.
/// Exercising a second monoid end-to-end is what proves the layer is
/// actually generic rather than specialised to sum/min/max.
#[test]
fn backends_agree_under_the_argmax_monoid() {
    let n = 20;
    for seed in 0..4u64 {
        let mut naive: NaiveForest<MaxEdge> = NaiveForest::new(n);
        let mut ufo: UfoForest<MaxEdge> = UfoForest::new(n);
        let mut lct: LinkCutForest<MaxEdge> = LinkCutForest::new(n);
        let mut rng = StdRng::seed_from_u64(0xa59 + seed);
        for step in 0..300 {
            let (u, v) = (rng.random_range(0..n), rng.random_range(0..n));
            match rng.random_range(0..8u32) {
                0..=2 => {
                    let expect = naive.link(u, v);
                    assert_eq!(ufo.link(u, v), expect);
                    lct.link(u, v);
                }
                3 => {
                    let expect = naive.cut(u, v);
                    assert_eq!(ufo.cut(u, v), expect);
                    assert_eq!(lct.cut(u, v), expect);
                }
                4..=5 => {
                    let w = WeightedId {
                        weight: rng.random_range(-500..=500),
                        id: u,
                    };
                    naive.set_weight(u, w);
                    ufo.set_weight(u, w);
                    lct.set_weight(u, w);
                }
                _ => {
                    let expect = naive.path_aggregate(u, v);
                    assert_eq!(
                        ufo.path_aggregate(u, v),
                        expect,
                        "seed {seed} step {step} argmax ufo path {u}-{v}"
                    );
                    assert_eq!(
                        lct.path_aggregate(u, v),
                        expect,
                        "seed {seed} step {step} argmax lct path {u}-{v}"
                    );
                }
            }
        }
    }
}

/// Overflow regression (satellite): `i64::MAX` vertex weights must saturate,
/// not wrap or panic, in every structure's combine path — including the
/// counters-carrying `Agg` arithmetic.
#[test]
fn extreme_weights_saturate_everywhere() {
    let n = 6;
    let mut naive: NaiveForest = NaiveForest::new(n);
    let mut ufo: UfoForest = UfoForest::new(n);
    let mut lct: LinkCutForest = LinkCutForest::new(n);
    let mut ett: EulerTourForest<TreapSequence> = EulerTourForest::new(n);
    let mut topo: TopologyForest = TopologyForest::new(n);
    for v in 0..n - 1 {
        assert!(naive.link(v, v + 1));
        assert!(ufo.link(v, v + 1));
        assert!(lct.link(v, v + 1));
        assert!(ett.link(v, v + 1));
        assert!(topo.link(v, v + 1));
    }
    for v in 0..n {
        naive.set_weight(v, i64::MAX);
        ufo.set_weight(v, i64::MAX);
        lct.set_weight(v, i64::MAX);
        ett.set_weight(v, i64::MAX);
        topo.set_weight(v, i64::MAX);
    }
    // path over all n maxed vertices: sum pins to i64::MAX, min/max exact
    assert_eq!(naive.path_sum(0, n - 1), Some(i64::MAX));
    assert_eq!(ufo.path_sum(0, n - 1), Some(i64::MAX));
    assert_eq!(lct.path_sum(0, n - 1), Some(i64::MAX));
    assert_eq!(ett.path_sum(0, n - 1), Some(i64::MAX));
    assert_eq!(topo.path_sum(0, n - 1), Some(i64::MAX));
    assert_eq!(ufo.path_min(0, n - 1), Some(i64::MAX));
    assert_eq!(ufo.path_max(0, n - 1), Some(i64::MAX));
    // component / subtree aggregates saturate identically
    assert_eq!(ufo.component_aggregate(0).sum, i64::MAX);
    assert_eq!(ett.component_sum(0), i64::MAX);
    assert_eq!(ufo.subtree_sum(1, 0), Some(i64::MAX));
    assert_eq!(naive.subtree_sum(1, 0), Some(i64::MAX));
    // and the negative extreme pins to i64::MIN
    for v in 0..n {
        ufo.set_weight(v, i64::MIN);
        lct.set_weight(v, i64::MIN);
    }
    assert_eq!(ufo.path_sum(0, n - 1), Some(i64::MIN));
    assert_eq!(lct.path_sum(0, n - 1), Some(i64::MIN));
    // updates after saturation remain consistent
    ufo.set_weight(2, 0);
    lct.set_weight(2, 0);
    assert_eq!(ufo.path_max(0, n - 1), Some(0));
    assert_eq!(lct.path_max(0, n - 1), Some(0));
}
