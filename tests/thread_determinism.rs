//! Cross-thread-count determinism: the parallel batch paths must produce
//! **byte-identical** results at every pool width and fan-out.
//!
//! Two layers of defence:
//! * the CI thread matrix runs the whole workspace test suite (including the
//!   differential and proptest oracles) under `DYNTREE_THREADS=1`, `2` and
//!   `8`, so any thread-count-dependent divergence fails an entire CI leg;
//! * this file varies the *effective* fan-out in-process via
//!   [`ParallelConfig`] with grains forced low, so the chunked pre-pass and
//!   the parallel sorts are exercised (and compared against the sequential
//!   reference) on every machine, even when the global pool has one thread.

use dyntree_connectivity::{DynConnectivity, SpanningBackend};
use dyntree_primitives::algebra::SumMinMax;
use dyntree_primitives::{group_by_key, remove_duplicates, GraphOp, ParallelConfig};
use dyntree_workloads::{
    churn_stream, road_grid_graph, sliding_window_stream, temporal_graph, FuzzTraceGen,
};
use ufo_forest::UfoForest;

/// A low-grain config: parallel code paths engage on small batches.
fn forced(threads: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        batch_grain: 16,
        chunk_grain: 8,
        delete_grain: 16,
        ..ParallelConfig::default()
    }
}

fn replay<B: SpanningBackend<Weights = SumMinMax>>(
    batches: &[Vec<GraphOp>],
    cfg: ParallelConfig,
) -> (Vec<String>, usize, usize) {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(0).with_parallel_config(cfg);
    let mut lines = Vec::new();
    for batch in batches {
        let report = engine.apply(batch);
        // the Debug rendering covers every per-op outcome byte-for-byte
        lines.push(format!("{:?}", report.outcomes));
    }
    engine.check_invariants().unwrap();
    (lines, engine.component_count(), engine.num_edges())
}

#[test]
fn apply_reports_are_identical_across_fanouts() {
    let temporal = temporal_graph(600, 3, 17);
    let stream = sliding_window_stream(&temporal, 256, 0.1, 23);
    let batches = stream.graph_op_batches(512);
    let reference = replay::<UfoForest>(&batches, ParallelConfig::sequential());
    for threads in [2, 4, 8] {
        let wide = replay::<UfoForest>(&batches, forced(threads));
        assert_eq!(wide, reference, "fan-out {threads} diverged");
    }
    // and the default config (whatever DYNTREE_THREADS says) agrees too
    let default = replay::<UfoForest>(&batches, ParallelConfig::default());
    assert_eq!(default, reference);
}

#[test]
fn churn_stream_batches_are_identical_across_fanouts() {
    let road = road_grid_graph(16, 5);
    let stream = churn_stream(&road, 2_000, 0.9, 0.1, 7);
    let batches = stream.graph_op_batches(1024);
    let reference = replay::<UfoForest>(&batches, ParallelConfig::sequential());
    let wide = replay::<UfoForest>(&batches, forced(8));
    assert_eq!(wide, reference);
    let lct = replay::<dyntree_linkcut::LinkCutForest>(&batches, forced(8));
    let lct_ref = replay::<dyntree_linkcut::LinkCutForest>(&batches, ParallelConfig::sequential());
    assert_eq!(lct, lct_ref, "snapshot-less backend diverged");
}

/// Like [`replay`], but renders the **whole** `BatchReport` (outcomes and
/// every counter) per batch, so a drained delete that miscounted applied vs
/// skipped would diverge even if the outcome list happened to agree.
fn replay_full_reports<B: SpanningBackend<Weights = SumMinMax>>(
    batches: &[Vec<GraphOp>],
    cfg: ParallelConfig,
) -> (Vec<String>, usize, usize) {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(0).with_parallel_config(cfg);
    let mut lines = Vec::new();
    for batch in batches {
        let mut report = engine.apply(batch);
        // byte-comparisons here are about outcomes and counts; a stray
        // DYNTREE_TELEMETRY=1 in the environment must not smuggle
        // wall-clock nanos into the rendering
        report.telemetry = None;
        lines.push(format!("{report:?}"));
    }
    engine.check_invariants().unwrap();
    (lines, engine.component_count(), engine.num_edges())
}

#[test]
fn delete_heavy_fuzz_traces_are_identical_across_fanouts() {
    // teardown-dominated fuzz trace: long consecutive delete runs over
    // star/chain/clique topologies — the parallel drain's home turf
    let batches = FuzzTraceGen::new(0x00DE_1E7E)
        .with_ops(6_000)
        .with_vertices(96)
        .delete_heavy()
        .batches(512);
    let reference = replay_full_reports::<UfoForest>(&batches, ParallelConfig::sequential());
    for threads in [1, 2, 4, 8] {
        let wide = replay_full_reports::<UfoForest>(&batches, forced(threads));
        assert_eq!(wide, reference, "fan-out {threads} diverged");
    }
    let default = replay_full_reports::<UfoForest>(&batches, ParallelConfig::default());
    assert_eq!(default, reference);
}

#[test]
fn insert_burst_then_heavy_delete_traces_are_identical_across_fanouts() {
    // explicit two-act churn: build bursts, then majority-delete teardown of
    // the very edges just inserted (plus repeats, which skip) — more than
    // half of the mutations after the build are deletes
    let n = 128;
    let mut ops: Vec<GraphOp> = vec![GraphOp::AddVertices(n)];
    let mut x = 0x5EEDu64;
    let mut rand = move |m: usize| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) as usize) % m
    };
    let mut live: Vec<(usize, usize)> = Vec::new();
    for _round in 0..6 {
        // insert burst: chain backbone + random chords
        for _ in 0..400 {
            let (u, v) = if rand(4) == 0 {
                let i = rand(n - 1);
                (i, i + 1)
            } else {
                (rand(n), rand(n))
            };
            ops.push(GraphOp::InsertEdge(u, v));
            if u != v {
                live.push((u, v));
            }
        }
        // delete wave: > 50% of the burst, mostly live edges, some repeats
        for _ in 0..450 {
            if live.is_empty() {
                break;
            }
            let idx = rand(live.len());
            let (u, v) = live[idx];
            if rand(8) != 0 {
                live.swap_remove(idx);
            }
            ops.push(GraphOp::DeleteEdge(u, v));
        }
    }
    let batches: Vec<Vec<GraphOp>> = ops.chunks(700).map(<[GraphOp]>::to_vec).collect();
    let reference = replay_full_reports::<UfoForest>(&batches, ParallelConfig::sequential());
    for threads in [1, 2, 4, 8] {
        let wide = replay_full_reports::<UfoForest>(&batches, forced(threads));
        assert_eq!(wide, reference, "fan-out {threads} diverged");
    }
    // snapshot-less splay backend takes the sequential walk and must agree
    // with itself across fan-outs too
    let lct_ref = replay_full_reports::<dyntree_linkcut::LinkCutForest>(
        &batches,
        ParallelConfig::sequential(),
    );
    let lct_wide = replay_full_reports::<dyntree_linkcut::LinkCutForest>(&batches, forced(8));
    assert_eq!(lct_wide, lct_ref);
}

/// Disjoint chorded rings torn down by round-robin delete runs: every run
/// certifies tree deletions in many distinct pre-batch components, which is
/// exactly what the parallel independent-search fan-out groups on.  The
/// telemetry module below proves the fan-out actually engages on this trace.
fn multi_component_teardown_batches() -> Vec<Vec<GraphOp>> {
    let (comps, size) = (8usize, 12usize);
    let mut ops = vec![GraphOp::AddVertices(comps * size)];
    for c in 0..comps {
        let base = c * size;
        for i in 0..size {
            ops.push(GraphOp::InsertEdge(base + i, base + (i + 1) % size));
        }
        // a chord, so early ring deletions find replacements
        ops.push(GraphOp::InsertEdge(base, base + size / 2));
    }
    // one long delete run, round-robin across the components
    for i in 0..size {
        for c in 0..comps {
            let base = c * size;
            ops.push(GraphOp::DeleteEdge(base + i, base + (i + 1) % size));
        }
    }
    vec![ops]
}

#[test]
fn multi_component_teardowns_are_identical_across_fanouts() {
    let batches = multi_component_teardown_batches();
    let reference = replay_full_reports::<UfoForest>(&batches, ParallelConfig::sequential());
    for threads in [1, 2, 4, 8] {
        let wide = replay_full_reports::<UfoForest>(&batches, forced(threads));
        assert_eq!(wide, reference, "fan-out {threads} diverged");
    }
    let default = replay_full_reports::<UfoForest>(&batches, ParallelConfig::default());
    assert_eq!(default, reference);
}

#[test]
fn mixed_churn_fuzz_traces_are_identical_across_fanouts() {
    // the default fuzz profile interleaves all op kinds (growth and weight
    // updates included), so delete runs start and stop at arbitrary offsets
    for seed in [11u64, 12] {
        let batches = FuzzTraceGen::new(seed).with_ops(4_000).batches(640);
        let reference = replay_full_reports::<UfoForest>(&batches, ParallelConfig::sequential());
        for threads in [2, 8] {
            let wide = replay_full_reports::<UfoForest>(&batches, forced(threads));
            assert_eq!(wide, reference, "seed {seed} fan-out {threads} diverged");
        }
    }
}

#[test]
fn grouping_primitives_are_identical_across_pool_widths() {
    // These run on the *global* pool, so this assertion is only interesting
    // under DYNTREE_THREADS>1 (the CI matrix) — but it must also hold, and
    // does trivially, on a 1-thread pool.
    let records: Vec<(u32, u32)> = (0..40_000u32).map(|i| ((i * 31) % 257, i)).collect();
    let (par, par_off) = group_by_key(records.clone());
    let mut seq = records.clone();
    seq.sort_by_key(|&(k, _)| k);
    assert_eq!(
        par, seq,
        "group_by_key must equal the stable sequential sort"
    );
    assert_eq!(par_off.len(), 258);

    let keys: Vec<u64> = (0..30_000u64).map(|i| i % 613).collect();
    let mut expected: Vec<u64> = (0..613).collect();
    expected.sort_unstable();
    assert_eq!(remove_duplicates(keys), expected);
}

/// Telemetry counter determinism (`--features telemetry`): the counter part
/// of a snapshot is data, not timing, and must obey the same determinism
/// contract as the reports themselves.
///
/// Two strengths are asserted:
/// * the **full** counter set (certificates, probes, drains included) is a
///   pure function of the trace and the `ParallelConfig` — identical across
///   repeated runs at the same config, whatever the pool width (the CI
///   thread matrix varies `DYNTREE_THREADS` over this very test);
/// * the **core HDT counters** (replacement searches / scanned edges /
///   promotions, level bumps, smaller-side sizes, component splits) don't
///   depend on the fan-out at all — the sequential walk and every forced
///   chunking agree, even though the certificate/probe counters legitimately
///   differ between the sequential and classified delete paths.
#[cfg(feature = "telemetry")]
mod telemetry_counters {
    use super::{forced, FuzzTraceGen, ParallelConfig, SumMinMax};
    use dyntree_connectivity::{DynConnectivity, SpanningBackend};
    use dyntree_primitives::{GraphOp, Telemetry};

    const CORE: [&str; 7] = [
        "replacement_searches",
        "replacement_edges_scanned",
        "replacement_promotions",
        "level_bumps_tree",
        "level_bumps_nontree",
        "smaller_side_vertices",
        "component_splits",
    ];

    /// Replays `batches` with an engine-local enabled telemetry handle and
    /// returns (full counter fingerprint, core-counter fingerprint).
    fn counter_fingerprints<B: SpanningBackend<Weights = SumMinMax>>(
        batches: &[Vec<GraphOp>],
        cfg: ParallelConfig,
    ) -> (String, String) {
        let mut engine: DynConnectivity<B> = DynConnectivity::new(0)
            .with_parallel_config(cfg)
            .with_telemetry(Telemetry::enabled());
        for batch in batches {
            engine.apply(batch);
        }
        engine.check_invariants().unwrap();
        let snap = engine.telemetry_snapshot().expect("telemetry enabled");
        let core = CORE
            .iter()
            .map(|name| format!("{name}={}", snap.counter(name)))
            .collect::<Vec<_>>()
            .join(" ");
        (snap.counters_fingerprint(), core)
    }

    #[test]
    fn counters_are_deterministic_across_fanouts() {
        let batches = FuzzTraceGen::new(0x7E1E)
            .with_ops(6_000)
            .with_vertices(96)
            .delete_heavy()
            .batches(512);
        type Ufo = ufo_forest::UfoForest;

        let (seq_full, seq_core) =
            counter_fingerprints::<Ufo>(&batches, ParallelConfig::sequential());
        assert!(
            seq_core.contains("replacement_searches=")
                && !seq_core.contains("replacement_searches=0 "),
            "trace too tame to exercise replacement search: {seq_core}"
        );

        // full fingerprint: reproducible at a fixed config
        let (again_full, _) = counter_fingerprints::<Ufo>(&batches, ParallelConfig::sequential());
        assert_eq!(seq_full, again_full, "sequential replay not reproducible");
        let (wide_a, _) = counter_fingerprints::<Ufo>(&batches, forced(4));
        let (wide_b, _) = counter_fingerprints::<Ufo>(&batches, forced(4));
        assert_eq!(wide_a, wide_b, "forced(4) replay not reproducible");

        // core HDT counters: invariant across every fan-out AND the
        // sequential walk
        for threads in [1, 2, 8] {
            let (_, core) = counter_fingerprints::<Ufo>(&batches, forced(threads));
            assert_eq!(
                core, seq_core,
                "core counters diverged at fan-out {threads}"
            );
        }
        let (_, default_core) = counter_fingerprints::<Ufo>(&batches, ParallelConfig::default());
        assert_eq!(
            default_core, seq_core,
            "default config core counters diverged"
        );
    }

    /// The independent-search fan-out must actually engage on a
    /// multi-component teardown (`searches_fanned_out > 0` at pool width
    /// ≥ 2) while the byte-identity sweep over the same trace holds — a
    /// fan-out that silently never fires would make that sweep vacuous.
    #[test]
    fn fan_out_engages_on_multi_component_teardowns() {
        use dyntree_connectivity::DynConnectivity;
        type Ufo = ufo_forest::UfoForest;

        let batches = super::multi_component_teardown_batches();
        let fanned = |cfg: ParallelConfig| -> u64 {
            let mut engine: DynConnectivity<Ufo> = DynConnectivity::new(0)
                .with_parallel_config(cfg)
                .with_telemetry(Telemetry::enabled());
            for batch in &batches {
                engine.apply(batch);
            }
            engine.check_invariants().unwrap();
            engine
                .telemetry_snapshot()
                .expect("telemetry enabled")
                .counter("searches_fanned_out")
        };
        assert_eq!(fanned(ParallelConfig::sequential()), 0);
        assert_eq!(fanned(forced(1)), 0, "1-thread pool must not fan out");
        for threads in [2, 4, 8] {
            assert!(
                fanned(forced(threads)) > 0,
                "fan-out never engaged at pool width {threads}"
            );
        }
    }
}

#[test]
fn worth_parallel_still_gates_small_batches() {
    // the engine must take the sequential pre-pass for tiny batches no
    // matter how wide the pool is — outcome equality is checked above, this
    // pins the *config* contract satellite
    let cfg = ParallelConfig::with_threads(64);
    assert!(!cfg.worth(cfg.batch_grain - 1));
    assert!(!ParallelConfig::sequential().worth(1 << 30));
}
