//! Property tests for the algebra layer: every shipped monoid satisfies the
//! monoid laws (identity, associativity), every `CommutativeMonoid` really
//! commutes, the invertible ones invert, and `Agg` itself is a lawful monoid
//! under `combine`.

use proptest::prelude::*;
use ufo_trees::{
    Agg, CommutativeMonoid, I64Max, I64Min, I64Sum, InvertibleMonoid, MaxEdge, Monoid, Pair,
    SumMinMax, WeightedId,
};

/// Checks identity + associativity + commutativity for one monoid on three
/// lifted weights.  (Commutativity is part of the contract for every monoid
/// the forests accept, which is all of the shipped ones.)
fn laws<M: CommutativeMonoid>(a: M::Weight, b: M::Weight, c: M::Weight) -> Result<(), String> {
    let (la, lb, lc) = (M::lift(a), M::lift(b), M::lift(c));
    if M::combine(M::IDENTITY, la) != la {
        return Err(format!("{}: left identity broken for {la:?}", M::NAME));
    }
    if M::combine(la, M::IDENTITY) != la {
        return Err(format!("{}: right identity broken for {la:?}", M::NAME));
    }
    let left = M::combine(M::combine(la, lb), lc);
    let right = M::combine(la, M::combine(lb, lc));
    if left != right {
        return Err(format!(
            "{}: associativity broken: {left:?} != {right:?}",
            M::NAME
        ));
    }
    if M::combine(la, lb) != M::combine(lb, la) {
        return Err(format!("{}: commutativity broken", M::NAME));
    }
    Ok(())
}

/// The same laws at the `Agg` level, including the counters.
fn agg_laws<M: CommutativeMonoid>(a: M::Weight, b: M::Weight, c: M::Weight) -> Result<(), String> {
    let (va, vb, vc) = (
        Agg::<M>::vertex(a),
        Agg::<M>::vertex(b).cross_edge(),
        Agg::<M>::vertex(c),
    );
    if Agg::combine(Agg::IDENTITY, va) != va || Agg::combine(va, Agg::IDENTITY) != va {
        return Err(format!("Agg<{}>: identity broken", M::NAME));
    }
    let left = Agg::combine(Agg::combine(va, vb), vc);
    let right = Agg::combine(va, Agg::combine(vb, vc));
    if left != right {
        return Err(format!("Agg<{}>: associativity broken", M::NAME));
    }
    if Agg::combine(va, vb) != Agg::combine(vb, va) {
        return Err(format!("Agg<{}>: commutativity broken", M::NAME));
    }
    if left.count != 3 || left.edges != 1 {
        return Err(format!(
            "Agg<{}>: counters wrong: count {} edges {}",
            M::NAME,
            left.count,
            left.edges
        ));
    }
    Ok(())
}

fn weighted_id(w: i64, id: usize) -> WeightedId {
    WeightedId { weight: w, id }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn i64_monoids_satisfy_the_laws(abc in (-1000i64..1000, -1000i64..1000, -1000i64..1000)) {
        let (a, b, c) = abc;
        prop_assert!(laws::<I64Sum>(a, b, c).is_ok());
        prop_assert!(laws::<I64Min>(a, b, c).is_ok());
        prop_assert!(laws::<I64Max>(a, b, c).is_ok());
        prop_assert!(laws::<SumMinMax>(a, b, c).is_ok());
        prop_assert!(laws::<Pair<I64Sum, I64Max>>(a, b, c).is_ok());
    }

    #[test]
    fn agg_is_a_lawful_monoid(abc in (-1000i64..1000, -1000i64..1000, -1000i64..1000)) {
        let (a, b, c) = abc;
        prop_assert!(agg_laws::<SumMinMax>(a, b, c).is_ok());
        prop_assert!(agg_laws::<I64Sum>(a, b, c).is_ok());
        prop_assert!(agg_laws::<Pair<I64Min, I64Max>>(a, b, c).is_ok());
    }

    #[test]
    fn max_edge_satisfies_the_laws(
        ws in (
            proptest::prop_oneof![(-1000i64..1000).boxed(), Just(i64::MIN).boxed(), Just(i64::MAX).boxed()],
            proptest::prop_oneof![(-1000i64..1000).boxed(), Just(i64::MIN).boxed(), Just(i64::MAX).boxed()],
            proptest::prop_oneof![(-1000i64..1000).boxed(), Just(i64::MIN).boxed(), Just(i64::MAX).boxed()],
        ),
        ids in (0usize..64, 0usize..64, 0usize..64),
    ) {
        let ((wa, wb, wc), (ia, ib, ic)) = (ws, ids);
        let (a, b, c) = (weighted_id(wa, ia), weighted_id(wb, ib), weighted_id(wc, ic));
        prop_assert!(laws::<MaxEdge>(a, b, c).is_ok());
        // argmax picks an element that was actually present
        let m = MaxEdge::combine(MaxEdge::combine(a, b), c);
        prop_assert!(m == a || m == b || m == c);
        prop_assert_eq!(m.weight, wa.max(wb).max(wc));
    }

    #[test]
    fn sum_is_invertible(ab in (-1_000_000i64..1_000_000, -1_000_000i64..1_000_000)) {
        let (a, b) = ab;
        // away from the saturation boundary the inverse law is exact
        prop_assert_eq!(I64Sum::uncombine(I64Sum::combine(a, b), b), a);
    }

    #[test]
    fn laws_hold_even_at_saturating_extremes(a in proptest::prop_oneof![
        Just(i64::MIN), Just(i64::MIN + 1), Just(-1i64), Just(0i64), Just(1i64),
        Just(i64::MAX - 1), Just(i64::MAX)
    ]) {
        // identity and commutativity survive saturation (associativity of the
        // saturating sum does not in general — that is the documented price
        // of overflow hardening, and min/max stay exact)
        prop_assert_eq!(I64Sum::combine(a, I64Sum::IDENTITY), a);
        prop_assert_eq!(I64Sum::combine(a, i64::MAX), I64Sum::combine(i64::MAX, a));
        prop_assert_eq!(SumMinMax::combine(SumMinMax::lift(a), SumMinMax::IDENTITY),
                        SumMinMax::lift(a));
    }
}

#[test]
fn non_invertibility_is_documented_by_construction() {
    // min/max deliberately do not implement InvertibleMonoid: removing the
    // current maximum cannot be answered without refolding (Section 4.2).
    // This test pins the *invertible* half of the split.
    fn assert_invertible<M: InvertibleMonoid>() {}
    assert_invertible::<I64Sum>();
}
