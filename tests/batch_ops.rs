//! Property tests for the batch-first operations API: arbitrary `GraphOp`
//! sequences — invalid ops and mid-stream vertex growth included — are
//! pushed through `apply` on four backends and must (a) never panic,
//! (b) produce exactly the outcomes of a sequentially replayed naive-backend
//! oracle, and (c) leave every backend agreeing with the oracle on
//! connectivity, component counts and weights.

use proptest::prelude::*;
use ufo_trees::connectivity::{DynConnectivity, SpanningBackend};
use ufo_trees::seqs::TreapSequence;
use ufo_trees::{
    EulerTourForest, GraphOp, LinkCutForest, NaiveConnectivity, NaiveForest, OpOutcome, SumMinMax,
    UfoForest,
};

/// Initial vertex count: small, so the generated id range (`0..24`) mixes
/// valid, not-yet-grown and permanently invalid vertices.
const N0: usize = 8;

fn op_strategy() -> BoxedStrategy<GraphOp> {
    let ids = 0usize..24;
    prop_oneof![
        (1usize..4).prop_map(GraphOp::AddVertices).boxed(),
        (ids.clone(), ids.clone())
            .prop_map(|(u, v)| GraphOp::InsertEdge(u, v))
            .boxed(),
        (ids.clone(), ids.clone())
            .prop_map(|(u, v)| GraphOp::InsertEdge(u, v))
            .boxed(),
        (ids.clone(), ids.clone())
            .prop_map(|(u, v)| GraphOp::DeleteEdge(u, v))
            .boxed(),
        (ids, -100i64..100)
            .prop_map(|(v, w)| GraphOp::SetWeight(v, w))
            .boxed(),
    ]
    .boxed()
}

/// Replays the ops one at a time through the typed single-op surface of the
/// naive backend, recording the expected outcome of every op.  This is the
/// ground truth `apply` must reproduce on every backend.
fn oracle_replay(ops: &[GraphOp]) -> (NaiveConnectivity, Vec<OpOutcome>) {
    let mut g = NaiveConnectivity::new(N0);
    let mut expected = Vec::with_capacity(ops.len());
    for &op in ops {
        expected.push(match op {
            GraphOp::AddVertices(count) => {
                let first = g.len();
                match first.checked_add(count) {
                    Some(target) => {
                        g.ensure_vertices(target);
                        OpOutcome::VerticesAdded { first, count }
                    }
                    None => OpOutcome::Rejected(ufo_trees::GraphError::VertexOutOfRange {
                        v: usize::MAX,
                        len: first,
                    }),
                }
            }
            GraphOp::InsertEdge(u, v) => match g.try_insert_edge(u, v) {
                Ok(kind) => OpOutcome::EdgeInserted { kind },
                Err(e) => OpOutcome::from_error(e),
            },
            GraphOp::DeleteEdge(u, v) => match g.try_delete_edge(u, v) {
                Ok(d) => OpOutcome::EdgeDeleted {
                    kind: d.kind,
                    split: d.split,
                },
                Err(e) => OpOutcome::from_error(e),
            },
            GraphOp::SetWeight(v, w) => match g.try_set_weight(v, w) {
                Ok(()) => OpOutcome::WeightSet,
                Err(e) => OpOutcome::from_error(e),
            },
            // bulk ops never enter this suite's strategy — backends differ
            // in support, so their differential lives in
            // crates/connectivity/tests/bulk_apply_proptest.rs
            GraphOp::PathApply(u, v, d) => match g.try_path_apply(u, v, d) {
                Ok(Some(count)) => OpOutcome::PathApplied { count },
                Ok(None) => OpOutcome::from_error(ufo_trees::GraphError::Disconnected { u, v }),
                Err(e) => OpOutcome::from_error(e),
            },
            GraphOp::ComponentApply(v, d) => match g.try_component_apply(v, d) {
                Ok(count) => OpOutcome::ComponentApplied { count },
                Err(e) => OpOutcome::from_error(e),
            },
        });
    }
    (g, expected)
}

fn check_backend<B: SpanningBackend<Weights = SumMinMax>>(
    ops: &[GraphOp],
    oracle: &mut NaiveConnectivity,
    expected: &[OpOutcome],
    chunk_size: usize,
) -> Result<(), proptest::TestCaseError> {
    let mut g: DynConnectivity<B> = DynConnectivity::new(N0);
    let mut pos = 0;
    for chunk in ops.chunks(chunk_size.max(1)) {
        let report = g.apply(chunk);
        prop_assert_eq!(
            &report.outcomes[..],
            &expected[pos..pos + chunk.len()],
            "[{}] outcomes diverge from the oracle at ops {}..{}",
            B::NAME,
            pos,
            pos + chunk.len()
        );
        prop_assert_eq!(
            report.applied + report.skipped + report.rejected,
            chunk.len(),
            "[{}] counters must cover the batch",
            B::NAME
        );
        pos += chunk.len();
    }
    prop_assert_eq!(g.len(), oracle.len(), "[{}] vertex count", B::NAME);
    prop_assert_eq!(
        g.component_count(),
        oracle.component_count(),
        "[{}] component count",
        B::NAME
    );
    prop_assert_eq!(g.num_edges(), oracle.num_edges(), "[{}] edges", B::NAME);
    // connectivity answers over a deterministic pair sample, including
    // out-of-range probes (lenient surface answers false, never panics)
    let n = g.len();
    for u in (0..n + 2).step_by(2) {
        for v in (1..n + 2).step_by(3) {
            prop_assert_eq!(
                g.connected(u, v),
                oracle.connected(u, v),
                "[{}] connected({}, {})",
                B::NAME,
                u,
                v
            );
        }
    }
    // weighted component sums where the backend supports them
    if B::SUPPORTS_COMPONENT_AGG {
        for v in 0..n {
            prop_assert_eq!(
                g.component_sum(v),
                oracle.component_sum(v),
                "[{}] component_sum({})",
                B::NAME,
                v
            );
        }
    }
    if let Err(e) = g.check_invariants() {
        return Err(proptest::TestCaseError(format!(
            "[{}] invariants: {}",
            B::NAME,
            e
        )));
    }
    Ok(())
}

/// Counter-contract regression: a `Skipped` delete of a missing edge must
/// land in `skipped` — never in `applied` — **identically** on the bulk
/// (drained) delete path and the one-at-a-time path, and the aggregate
/// counters must partition the batch exactly.  The bulk path is forced on
/// with a low-grain [`ParallelConfig`](ufo_trees::primitives::ParallelConfig)
/// so this holds even on a 1-thread CI pool.
#[test]
fn skipped_deletes_count_identically_on_bulk_and_singleton_paths() {
    use ufo_trees::primitives::ParallelConfig;
    let forced = ParallelConfig {
        threads: 4,
        batch_grain: 8,
        chunk_grain: 4,
        delete_grain: 4,
        ..ParallelConfig::default()
    };
    // triangle + stray edge, then a delete run mixing: live non-tree, live
    // tree, missing, duplicate (missing by the time it applies), rejected
    let ops: Vec<GraphOp> = vec![
        GraphOp::AddVertices(6),
        GraphOp::InsertEdge(0, 1),
        GraphOp::InsertEdge(1, 2),
        GraphOp::InsertEdge(2, 0), // non-tree
        GraphOp::InsertEdge(3, 4),
        GraphOp::DeleteEdge(2, 0), // applied (non-tree drain)
        GraphOp::DeleteEdge(4, 5), // skipped: never live
        GraphOp::DeleteEdge(0, 1), // applied (tree; (2,0) already gone -> split)
        GraphOp::DeleteEdge(0, 1), // skipped: duplicate of the one above
        GraphOp::DeleteEdge(5, 5), // rejected: self loop
        GraphOp::DeleteEdge(0, 9), // rejected: out of range
        GraphOp::DeleteEdge(3, 4), // applied
    ];
    let mut bulk: DynConnectivity<UfoForest> = DynConnectivity::new(0).with_parallel_config(forced);
    let bulk_report = bulk.apply(&ops);
    let mut single: DynConnectivity<UfoForest> =
        DynConnectivity::new(0).with_parallel_config(ParallelConfig::sequential());
    let mut single_outcomes = Vec::new();
    let (mut applied, mut skipped, mut rejected) = (0, 0, 0);
    for op in &ops {
        let r = single.apply(std::slice::from_ref(op));
        applied += r.applied;
        skipped += r.skipped;
        rejected += r.rejected;
        single_outcomes.extend(r.outcomes);
    }
    assert_eq!(bulk_report.outcomes, single_outcomes);
    assert_eq!(
        (
            bulk_report.applied,
            bulk_report.skipped,
            bulk_report.rejected
        ),
        (applied, skipped, rejected),
        "bulk counters must equal summed singleton counters"
    );
    // the missing-edge deletes are skips, not applications, on both paths
    assert_eq!((applied, skipped, rejected), (8, 2, 2));
    assert_eq!(
        bulk_report.applied + bulk_report.skipped + bulk_report.rejected,
        ops.len(),
        "counters partition the batch"
    );
    // the Display line (the human-facing counter surface) agrees too; the
    // trailing `v1` is the engine's batch version — this was its first apply
    assert_eq!(
        bulk_report.to_string(),
        "12 ops: 8 applied, 2 skipped, 2 rejected | vertices 0 -> 6 | components 0 -> 5 | v1"
    );
    // count-level bulk API: duplicates collapse in normalize, but a missing
    // edge still never counts as removed
    let mut g: DynConnectivity<UfoForest> = DynConnectivity::new(4).with_parallel_config(forced);
    g.batch_insert(&[(0, 1), (1, 2)]);
    assert_eq!(g.batch_delete(&[(0, 1), (0, 1), (2, 3), (1, 2)]), 2);
    assert_eq!(g.num_edges(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apply_matches_oracle_on_arbitrary_op_sequences(
        ops in proptest::collection::vec(op_strategy(), 0..120),
        chunk in 1usize..24,
    ) {
        let (mut oracle, expected) = oracle_replay(&ops);
        check_backend::<UfoForest>(&ops, &mut oracle, &expected, chunk)?;
        check_backend::<LinkCutForest>(&ops, &mut oracle, &expected, chunk)?;
        check_backend::<EulerTourForest<TreapSequence>>(&ops, &mut oracle, &expected, chunk)?;
        check_backend::<NaiveForest>(&ops, &mut oracle, &expected, chunk)?;
    }

    #[test]
    fn growth_mid_stream_preserves_connectivity_answers(
        edges in proptest::collection::vec((0usize..N0, 0usize..N0), 0..30),
        grow_by in 1usize..12,
    ) {
        // build an arbitrary graph on the original vertex range
        let mut g: DynConnectivity<UfoForest> = DynConnectivity::new(N0);
        for &(u, v) in &edges {
            let _ = g.try_insert_edge(u, v);
        }
        let before: Vec<Vec<bool>> = (0..N0)
            .map(|u| (0..N0).map(|v| g.connected(u, v)).collect())
            .collect();
        let components = g.component_count();
        // grow; every old answer must be unchanged, new vertices isolated
        let range = g.add_vertices(grow_by);
        prop_assert_eq!(range, N0..N0 + grow_by);
        prop_assert_eq!(g.component_count(), components + grow_by);
        for (u, row) in before.iter().enumerate() {
            for (v, &was) in row.iter().enumerate() {
                prop_assert_eq!(g.connected(u, v), was, "({}, {})", u, v);
            }
        }
        for x in N0..N0 + grow_by {
            for u in 0..N0 {
                prop_assert!(!g.connected(x, u), "grown vertex {} must be isolated", x);
            }
            prop_assert!(g.connected(x, x));
        }
        g.check_invariants().map_err(proptest::TestCaseError)?;
    }
}
