//! Quickstart: build a UFO forest, run updates and every kind of query.
//!
//! Run with: `cargo run --release --example quickstart`

use ufo_trees::UfoForest;

fn main() {
    // A small corporate network: routers 0..10, weighted by load.
    let mut forest: UfoForest = UfoForest::new(10);
    for v in 0..10 {
        forest.set_weight(v, (v as i64) * 10);
    }

    // Build a tree: a backbone path 0-1-2-3 with leaves hanging off it.
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (1, 4),
        (1, 5),
        (2, 6),
        (3, 7),
        (7, 8),
        (7, 9),
    ];
    for (u, v) in edges {
        assert!(forest.link(u, v), "link ({u},{v}) failed");
    }

    println!("vertices: {}, edges: {}", forest.len(), forest.num_edges());
    println!("connected(4, 9) = {}", forest.connected(4, 9));
    println!("path 4 -> 9: sum of loads   = {:?}", forest.path_sum(4, 9));
    println!("path 4 -> 9: max load       = {:?}", forest.path_max(4, 9));
    println!(
        "path 4 -> 9: hops           = {:?}",
        forest.path_length(4, 9)
    );
    println!(
        "subtree under 7 (away from 3): size = {:?}",
        forest.subtree_size(7, 3)
    );
    println!(
        "component diameter          = {}",
        forest.component_diameter(0)
    );

    // Mark two routers as gateways and ask for the nearest one.
    forest.set_marked(0, true);
    forest.set_marked(9, true);
    println!(
        "nearest gateway from 6      = {:?} hops",
        forest.nearest_marked_distance(6)
    );

    // Dynamic updates: take the backbone link (1, 2) down.
    forest.cut(1, 2);
    println!(
        "after cutting (1,2): connected(4, 9) = {}",
        forest.connected(4, 9)
    );
    println!(
        "component of 4 now has {} routers",
        forest.component_size(4)
    );

    // Batch-dynamic interface: reconnect and extend in one batch.
    let inserted = forest.batch_link(&[(1, 2), (5, 6)]);
    println!(
        "batch inserted {} edges (1 rejected: it would close a cycle)",
        inserted
    );
    println!("connected(4, 9) again = {}", forest.connected(4, 9));
}
