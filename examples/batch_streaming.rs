//! Batch-dynamic streaming: ingest a stream of edge batches (the Figure 8 /
//! Figure 9 workload shape) into a UFO forest and a batch Euler tour forest,
//! answering batch connectivity queries between batches.
//!
//! Run with: `cargo run --release --example batch_streaming`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ufo_trees::seqs::TreapSequence;
use ufo_trees::workloads::preferential_attachment_tree;
use ufo_trees::{BatchEulerForest, UfoForest};

fn main() {
    let n = 100_000;
    let batch_size = 10_000;
    let tree = preferential_attachment_tree(n, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let mut edges = tree.edges.clone();
    edges.shuffle(&mut rng);

    let mut ufo: UfoForest = UfoForest::new(n);
    let mut ett = BatchEulerForest::<TreapSequence>::new(n);

    println!(
        "streaming {} edges in batches of {}",
        edges.len(),
        batch_size
    );
    let start = Instant::now();
    for (i, batch) in edges.chunks(batch_size).enumerate() {
        let t0 = Instant::now();
        let a = ufo.batch_link(batch);
        let t1 = Instant::now();
        let b = ett.batch_link(batch);
        let t2 = Instant::now();
        // between batches, fire a burst of connectivity queries
        let queries: Vec<(usize, usize)> = (0..1_000)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let ufo_answers = ufo.batch_connected(&queries);
        let ett_answers = ett.batch_connected(&queries);
        assert_eq!(ufo_answers, ett_answers, "batch {} answers disagree", i);
        println!(
            "batch {:>3}: ufo {:>4} edges in {:>7.2?} | ett {:>4} edges in {:>7.2?} | {} queries agree",
            i,
            a,
            t1 - t0,
            b,
            t2 - t1,
            queries.len()
        );
    }
    println!(
        "done in {:.2?}; components left: {} (UFO), {} tree edges",
        start.elapsed(),
        n - ufo.num_edges(),
        ufo.num_edges()
    );
}
