//! Batch-dynamic streaming through the `GraphOp` transaction surface: ingest
//! a stream of edge batches (the Figure 8 / Figure 9 workload shape) into
//! two connectivity engines — UFO forest vs batch Euler tour forest — with
//! `apply(&[GraphOp])`, printing each transaction's [`BatchReport`] counters
//! and racing batch connectivity queries between transactions.
//!
//! Both engines start from an **empty** graph; the first transaction grows
//! the vertex set with an `AddVertices` op.  The tree's edge list is
//! duplicate-free, so the reports prove it op by op: every transaction must
//! come back all-applied (`skipped == rejected == 0`), and both backends
//! must report byte-identical outcomes — accounting a bool interface could
//! never give.
//!
//! Run with: `cargo run --release --example batch_streaming`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ufo_trees::connectivity::DynConnectivity;
use ufo_trees::seqs::TreapSequence;
use ufo_trees::workloads::preferential_attachment_tree;
use ufo_trees::{BatchEulerForest, GraphOp, UfoForest};

fn main() {
    let n = 100_000;
    let batch_size = 10_000;
    let tree = preferential_attachment_tree(n, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let mut edges = tree.edges.clone();
    edges.shuffle(&mut rng);

    let mut ufo: DynConnectivity<UfoForest> = DynConnectivity::new(0);
    let mut ett: DynConnectivity<BatchEulerForest<TreapSequence>> = DynConnectivity::new(0);

    println!(
        "streaming {} edges in GraphOp transactions of {}",
        edges.len(),
        batch_size
    );
    let start = Instant::now();
    for (i, batch) in edges.chunks(batch_size).enumerate() {
        let mut ops: Vec<GraphOp> = Vec::with_capacity(batch.len() + 1);
        if i == 0 {
            ops.push(GraphOp::AddVertices(n));
        }
        ops.extend(batch.iter().map(|&(u, v)| GraphOp::InsertEdge(u, v)));

        let t0 = Instant::now();
        let ra = ufo.apply(&ops);
        let t1 = Instant::now();
        let rb = ett.apply(&ops);
        let t2 = Instant::now();
        assert_eq!(
            ra.outcomes, rb.outcomes,
            "transaction {i}: backends must report identical outcomes"
        );
        assert_eq!(ra.rejected, 0, "a shuffled tree has no invalid ops");

        // between transactions, fire a burst of connectivity queries
        let queries: Vec<(usize, usize)> = (0..1_000)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let ufo_answers = ufo.batch_connected(&queries);
        let ett_answers = ett.batch_connected(&queries);
        assert_eq!(ufo_answers, ett_answers, "batch {} answers disagree", i);
        println!(
            "txn {:>2}: [{}] | ufo {:>7.2?} vs ett {:>7.2?} | {} queries agree",
            i,
            ra,
            t1 - t0,
            t2 - t1,
            queries.len()
        );
    }
    println!(
        "done in {:.2?}; {} components (UFO), {} tree edges, {} live edges",
        start.elapsed(),
        ufo.component_count(),
        ufo.spanning_forest_size(),
        ufo.num_edges(),
    );
    ufo.check_invariants().expect("ufo engine invariants");
}
