//! Incremental minimum-spanning-forest maintenance over the connectivity
//! engine — the first workload unlocked by the generic algebra layer.
//!
//! The classic incremental MST rule needs exactly one non-trivial primitive:
//! *max-edge-on-path*.  On inserting an edge `(u, v, w)`:
//!
//! * if `u` and `v` are in different trees, the edge joins the forest;
//! * otherwise find the maximum-weight edge on the current `u`–`v` tree path;
//!   if it is heavier than `w`, swap it out for the new edge, else discard
//!   the new edge.  (Both the evicted and the discarded edge were the
//!   maximum of some cycle, so by the cycle property they can never re-enter
//!   the MSF under insert-only workloads — dropping them is exact.)
//!
//! The forests in this workspace aggregate *vertex* weights, so each graph
//! edge is subdivided: an *edge-vertex* carries the edge's weight tagged with
//! its id ([`WeightedId`]) under the [`MaxEdge`] argmax monoid, and real
//! vertices carry the monoid identity.  The engine is a plain
//! [`DynConnectivity`] over a link-cut backend instantiated at `MaxEdge`;
//! `path_agg` then *is* max-edge-on-path, and its `id` names the edge to
//! evict.  Every maintained state is verified against a from-scratch Kruskal
//! recompute over all edges inserted so far.
//!
//! A second phase exercises the lazy-action layer (DESIGN.md §13):
//! *corridor decay* re-weights every forest edge on a tree path with **one**
//! `try_path_apply` — an O(log n) lazy tag instead of the pre-action
//! alternative, one `set_weight` per touched edge (O(k log n) for a
//! k-edge corridor).  A uniform shift moves every argmax candidate by the
//! same amount, so `MaxEdge` keeps its carrier ids and `path_agg` keeps
//! naming real edges; and since decay only *lowers* forest-edge weights,
//! every previously discarded edge stays the maximum of its cycle and the
//! maintained forest stays exactly Kruskal-optimal — which the verifier
//! checks by mirroring each corridor with a naive per-edge update on the
//! bookkeeping side.
//!
//! Run with: `cargo run --release --example dynamic_mst`

use dyntree_connectivity::DynConnectivity;
use dyntree_linkcut::LinkCutForest;
use dyntree_primitives::algebra::{MaxEdge, WeightedId};
use dyntree_primitives::Dsu;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Incremental minimum spanning forest over `n` real vertices.
struct IncrementalMsf {
    n: usize,
    engine: DynConnectivity<LinkCutForest<MaxEdge>>,
    /// Endpoints and weight of every *forest* edge, by edge id.
    forest_edges: Vec<Option<(usize, usize, i64)>>,
    total_weight: i64,
    next_id: usize,
}

impl IncrementalMsf {
    /// `max_edges` bounds the number of `insert` calls (each consumes one
    /// edge-vertex slot in the engine's universe).
    fn new(n: usize, max_edges: usize) -> Self {
        Self {
            n,
            engine: DynConnectivity::new(n + max_edges),
            forest_edges: vec![None; max_edges],
            total_weight: 0,
            next_id: 0,
        }
    }

    /// The engine vertex standing in for edge id `e`.
    fn edge_vertex(&self, e: usize) -> usize {
        self.n + e
    }

    /// Inserts edge `(u, v, w)`; returns whether the forest changed.
    fn insert(&mut self, u: usize, v: usize, w: i64) -> bool {
        let e = self.next_id;
        self.next_id += 1;
        if self.engine.connected(u, v) {
            // Max edge on the current tree path; the subdivision vertices are
            // the only weight carriers, so the argmax names a forest edge.
            let top = self
                .engine
                .path_agg(u, v)
                .expect("connected ⇒ path aggregate")
                .value;
            debug_assert!(top.is_some(), "tree path must carry at least one edge");
            if top.weight <= w {
                return false; // new edge is the cycle maximum: discard
            }
            self.remove_forest_edge(top.id);
        }
        self.add_forest_edge(e, u, v, w);
        true
    }

    fn add_forest_edge(&mut self, e: usize, u: usize, v: usize, w: i64) {
        let ev = self.edge_vertex(e);
        // The engine only ever holds forest edges, so both subdivision
        // segments join distinct trees (ev is isolated before this).
        assert!(self.engine.insert_edge(u, ev));
        assert!(self.engine.insert_edge(ev, v));
        assert!(self.engine.set_weight(ev, WeightedId { weight: w, id: e }));
        self.forest_edges[e] = Some((u, v, w));
        self.total_weight += w;
    }

    fn remove_forest_edge(&mut self, e: usize) {
        let (u, v, w) = self.forest_edges[e].take().expect("evicting a live edge");
        let ev = self.edge_vertex(e);
        // No non-tree edges exist, so each deletion splits (no replacement
        // search can rewire the forest behind our back).
        assert!(self.engine.delete_edge(u, ev));
        assert!(self.engine.delete_edge(ev, v));
        self.total_weight -= w;
    }

    fn forest_size(&self) -> usize {
        self.forest_edges.iter().flatten().count()
    }

    /// Uniformly shifts every forest edge on the `a`–`b` tree path by
    /// `delta` — one O(log n) lazy path update on the engine, mirrored by a
    /// naive per-edge walk over the bookkeeping (the verifier's eager
    /// counterpart).  Returns the ids of the corridor's edges.
    fn decay_corridor(&mut self, a: usize, b: usize, delta: i64) -> Vec<usize> {
        let count = self
            .engine
            .try_path_apply(
                a,
                b,
                WeightedId {
                    weight: delta,
                    id: 0,
                },
            )
            .expect("valid endpoints on a weighted path-apply backend")
            .expect("corridor endpoints must be connected");
        // the subdivided path alternates real/edge vertices: 2k+1 vertices
        // carry exactly k forest edges
        assert!(count % 2 == 1, "a real-to-real path has odd length");
        let k = ((count - 1) / 2) as usize;
        let path = self
            .forest_path(a, b)
            .expect("mirror forest must connect what the engine connects");
        assert_eq!(path.len(), k, "engine corridor disagrees with the mirror");
        for &e in &path {
            let (u, v, w) = self.forest_edges[e].expect("live forest edge");
            self.forest_edges[e] = Some((u, v, w + delta));
            self.total_weight += delta;
        }
        path
    }

    /// Edge ids on the mirror forest's `a`–`b` path (BFS over the
    /// bookkeeping — deliberately engine-free).
    fn forest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.n];
        for (e, slot) in self.forest_edges.iter().enumerate() {
            if let Some((u, v, _)) = *slot {
                adj[u].push((v, e));
                adj[v].push((u, e));
            }
        }
        let mut from: Vec<Option<(usize, usize)>> = vec![None; self.n];
        let mut queue = std::collections::VecDeque::from([a]);
        let mut seen = vec![false; self.n];
        seen[a] = true;
        while let Some(x) = queue.pop_front() {
            if x == b {
                let mut path = Vec::new();
                let mut cur = b;
                while cur != a {
                    let (prev, e) = from[cur].expect("BFS parent");
                    path.push(e);
                    cur = prev;
                }
                path.reverse();
                return Some(path);
            }
            for &(y, e) in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    from[y] = Some((x, e));
                    queue.push_back(y);
                }
            }
        }
        None
    }
}

/// From-scratch Kruskal over `edges`; returns (total weight, edge count).
fn kruskal(n: usize, edges: &[(usize, usize, i64)]) -> (i64, usize) {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| (edges[i].2, i));
    let mut dsu = Dsu::new(n);
    let (mut total, mut picked) = (0i64, 0usize);
    for i in order {
        let (u, v, w) = edges[i];
        if dsu.union(u, v) {
            total += w;
            picked += 1;
        }
    }
    (total, picked)
}

fn main() {
    let n = 600;
    let rounds = 6_000;
    let decay_rounds = 300;
    let mut rng = StdRng::seed_from_u64(0x5eed0757);
    let mut msf = IncrementalMsf::new(n, rounds + decay_rounds);
    let mut all_edges: Vec<(usize, usize, i64)> = Vec::with_capacity(rounds);
    let mut swaps = 0usize;
    let mut rejects = 0usize;

    for step in 1..=rounds {
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n);
        while v == u {
            v = rng.random_range(0..n);
        }
        let w = rng.random_range(1..=1_000_000i64);
        let before = msf.forest_size();
        let changed = msf.insert(u, v, w);
        all_edges.push((u, v, w));
        if changed && msf.forest_size() == before {
            swaps += 1;
        } else if !changed {
            rejects += 1;
        }

        // Verify against Kruskal at increasing intervals (it is O(m α m)).
        if step % 500 == 0 || step == rounds {
            let (kw, kn) = kruskal(n, &all_edges);
            assert_eq!(
                (msf.total_weight, msf.forest_size()),
                (kw, kn),
                "step {step}: maintained MSF diverged from Kruskal"
            );
            println!(
                "step {:>5}: forest edges {:>4}, total weight {:>10}  (swaps {:>4}, rejected {:>4})  ✓ Kruskal",
                step,
                msf.forest_size(),
                msf.total_weight,
                swaps,
                rejects
            );
        }
    }
    println!(
        "phase 1: {} inserted edges → {}-edge minimum spanning forest of weight {}",
        rounds,
        msf.forest_size(),
        msf.total_weight
    );

    // Phase 2 — corridor decay interleaved with fresh inserts.  Each round
    // lowers a whole tree path with one lazy path_apply (vs one set_weight
    // per corridor edge before the action layer existed), then inserts a
    // new random edge so the eviction rule keeps running over the decayed
    // weights.  Decay is strictly negative, so discarded edges stay cycle
    // maxima and the maintained forest stays exactly Kruskal-optimal.
    let mut corridor_edges = 0usize;
    for round in 1..=decay_rounds {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n);
        while b == a {
            b = rng.random_range(0..n);
        }
        if msf.engine.connected(a, b) {
            let delta = -rng.random_range(1..=5_000i64);
            let path = msf.decay_corridor(a, b, delta);
            corridor_edges += path.len();
            // mirror the decay into the verifier's edge list (ids are
            // insertion order, so corridor ids index it directly)
            for e in path {
                all_edges[e].2 += delta;
            }
        }
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n);
        while v == u {
            v = rng.random_range(0..n);
        }
        let w = rng.random_range(1..=1_000_000i64);
        msf.insert(u, v, w);
        all_edges.push((u, v, w));

        if round % 50 == 0 || round == decay_rounds {
            let (kw, kn) = kruskal(n, &all_edges);
            assert_eq!(
                (msf.total_weight, msf.forest_size()),
                (kw, kn),
                "decay round {round}: maintained MSF diverged from Kruskal"
            );
            println!(
                "decay {:>4}: {:>5} corridor edges re-weighted, total weight {:>11}  ✓ Kruskal",
                round, corridor_edges, msf.total_weight
            );
        }
    }
    println!(
        "final: {} edges ({} decayed corridors' worth) → {}-edge minimum spanning forest of weight {}",
        all_edges.len(),
        corridor_edges,
        msf.forest_size(),
        msf.total_weight
    );
}
