//! Incremental minimum-spanning-forest maintenance over the connectivity
//! engine — the first workload unlocked by the generic algebra layer.
//!
//! The classic incremental MST rule needs exactly one non-trivial primitive:
//! *max-edge-on-path*.  On inserting an edge `(u, v, w)`:
//!
//! * if `u` and `v` are in different trees, the edge joins the forest;
//! * otherwise find the maximum-weight edge on the current `u`–`v` tree path;
//!   if it is heavier than `w`, swap it out for the new edge, else discard
//!   the new edge.  (Both the evicted and the discarded edge were the
//!   maximum of some cycle, so by the cycle property they can never re-enter
//!   the MSF under insert-only workloads — dropping them is exact.)
//!
//! The forests in this workspace aggregate *vertex* weights, so each graph
//! edge is subdivided: an *edge-vertex* carries the edge's weight tagged with
//! its id ([`WeightedId`]) under the [`MaxEdge`] argmax monoid, and real
//! vertices carry the monoid identity.  The engine is a plain
//! [`DynConnectivity`] over a link-cut backend instantiated at `MaxEdge`;
//! `path_agg` then *is* max-edge-on-path, and its `id` names the edge to
//! evict.  Every maintained state is verified against a from-scratch Kruskal
//! recompute over all edges inserted so far.
//!
//! Run with: `cargo run --release --example dynamic_mst`

use dyntree_connectivity::DynConnectivity;
use dyntree_linkcut::LinkCutForest;
use dyntree_primitives::algebra::{MaxEdge, WeightedId};
use dyntree_primitives::Dsu;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Incremental minimum spanning forest over `n` real vertices.
struct IncrementalMsf {
    n: usize,
    engine: DynConnectivity<LinkCutForest<MaxEdge>>,
    /// Endpoints and weight of every *forest* edge, by edge id.
    forest_edges: Vec<Option<(usize, usize, i64)>>,
    total_weight: i64,
    next_id: usize,
}

impl IncrementalMsf {
    /// `max_edges` bounds the number of `insert` calls (each consumes one
    /// edge-vertex slot in the engine's universe).
    fn new(n: usize, max_edges: usize) -> Self {
        Self {
            n,
            engine: DynConnectivity::new(n + max_edges),
            forest_edges: vec![None; max_edges],
            total_weight: 0,
            next_id: 0,
        }
    }

    /// The engine vertex standing in for edge id `e`.
    fn edge_vertex(&self, e: usize) -> usize {
        self.n + e
    }

    /// Inserts edge `(u, v, w)`; returns whether the forest changed.
    fn insert(&mut self, u: usize, v: usize, w: i64) -> bool {
        let e = self.next_id;
        self.next_id += 1;
        if self.engine.connected(u, v) {
            // Max edge on the current tree path; the subdivision vertices are
            // the only weight carriers, so the argmax names a forest edge.
            let top = self
                .engine
                .path_agg(u, v)
                .expect("connected ⇒ path aggregate")
                .value;
            debug_assert!(top.is_some(), "tree path must carry at least one edge");
            if top.weight <= w {
                return false; // new edge is the cycle maximum: discard
            }
            self.remove_forest_edge(top.id);
        }
        self.add_forest_edge(e, u, v, w);
        true
    }

    fn add_forest_edge(&mut self, e: usize, u: usize, v: usize, w: i64) {
        let ev = self.edge_vertex(e);
        // The engine only ever holds forest edges, so both subdivision
        // segments join distinct trees (ev is isolated before this).
        assert!(self.engine.insert_edge(u, ev));
        assert!(self.engine.insert_edge(ev, v));
        assert!(self.engine.set_weight(ev, WeightedId { weight: w, id: e }));
        self.forest_edges[e] = Some((u, v, w));
        self.total_weight += w;
    }

    fn remove_forest_edge(&mut self, e: usize) {
        let (u, v, w) = self.forest_edges[e].take().expect("evicting a live edge");
        let ev = self.edge_vertex(e);
        // No non-tree edges exist, so each deletion splits (no replacement
        // search can rewire the forest behind our back).
        assert!(self.engine.delete_edge(u, ev));
        assert!(self.engine.delete_edge(ev, v));
        self.total_weight -= w;
    }

    fn forest_size(&self) -> usize {
        self.forest_edges.iter().flatten().count()
    }
}

/// From-scratch Kruskal over `edges`; returns (total weight, edge count).
fn kruskal(n: usize, edges: &[(usize, usize, i64)]) -> (i64, usize) {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| (edges[i].2, i));
    let mut dsu = Dsu::new(n);
    let (mut total, mut picked) = (0i64, 0usize);
    for i in order {
        let (u, v, w) = edges[i];
        if dsu.union(u, v) {
            total += w;
            picked += 1;
        }
    }
    (total, picked)
}

fn main() {
    let n = 600;
    let rounds = 6_000;
    let mut rng = StdRng::seed_from_u64(0x5eed0757);
    let mut msf = IncrementalMsf::new(n, rounds);
    let mut all_edges: Vec<(usize, usize, i64)> = Vec::with_capacity(rounds);
    let mut swaps = 0usize;
    let mut rejects = 0usize;

    for step in 1..=rounds {
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n);
        while v == u {
            v = rng.random_range(0..n);
        }
        let w = rng.random_range(1..=1_000_000i64);
        let before = msf.forest_size();
        let changed = msf.insert(u, v, w);
        all_edges.push((u, v, w));
        if changed && msf.forest_size() == before {
            swaps += 1;
        } else if !changed {
            rejects += 1;
        }

        // Verify against Kruskal at increasing intervals (it is O(m α m)).
        if step % 500 == 0 || step == rounds {
            let (kw, kn) = kruskal(n, &all_edges);
            assert_eq!(
                (msf.total_weight, msf.forest_size()),
                (kw, kn),
                "step {step}: maintained MSF diverged from Kruskal"
            );
            println!(
                "step {:>5}: forest edges {:>4}, total weight {:>10}  (swaps {:>4}, rejected {:>4})  ✓ Kruskal",
                step,
                msf.forest_size(),
                msf.total_weight,
                swaps,
                rejects
            );
        }
    }
    println!(
        "final: {} inserted edges → {}-edge minimum spanning forest of weight {}",
        rounds,
        msf.forest_size(),
        msf.total_weight
    );
}
