//! Diameter scaling profile (a miniature of Figure 6): show how the UFO
//! forest's hierarchy height and update speed track the input diameter, which
//! is the paper's key explanation for why UFO trees and link-cut trees beat
//! every other structure on shallow inputs.
//!
//! Run with: `cargo run --release --example diameter_profile`

use std::time::Instant;
use ufo_trees::workloads::zipf_tree;
use ufo_trees::{LinkCutForest, UfoForest};

fn main() {
    let n = 50_000;
    println!(
        "{:>5} {:>10} {:>12} {:>14} {:>14}",
        "alpha", "diameter", "ufo height", "ufo build (s)", "lct build (s)"
    );
    for alpha in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let tree = zipf_tree(n, alpha, 11);
        let diameter = tree.diameter();

        let t0 = Instant::now();
        let mut ufo: UfoForest = UfoForest::new(n);
        for &(u, v) in &tree.edges {
            ufo.link(u, v);
        }
        let ufo_time = t0.elapsed().as_secs_f64();
        let height = ufo.engine().height(tree.edges[0].0);

        let t1 = Instant::now();
        let mut lct: LinkCutForest = LinkCutForest::new(n);
        for &(u, v) in &tree.edges {
            lct.link(u, v);
        }
        let lct_time = t1.elapsed().as_secs_f64();

        println!(
            "{:>5.1} {:>10} {:>12} {:>14.3} {:>14.3}",
            alpha, diameter, height, ufo_time, lct_time
        );
        // keep the structures alive until after timing
        drop(lct);
        drop(ufo);
    }
    println!("\nAs alpha grows the diameter shrinks and the UFO hierarchy flattens,");
    println!("which is exactly the O(min(log n, D)) behaviour of Theorem 4.3.");
}
