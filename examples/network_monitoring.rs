//! Network monitoring on a **live edge stream**, driven through the typed
//! batch-first operations API: the monitor starts from an *empty* graph,
//! grows the vertex set when the topology is discovered, and ingests link
//! failures/repairs as [`GraphOp`] transactions whose [`BatchReport`]s are
//! the monitoring signal — every applied/skipped/rejected op is accounted
//! for, and the component counters come straight from the reports.
//!
//! This is the workload the paper's dynamic trees exist to serve: the
//! `DynConnectivity` engine keeps a spanning forest of the surviving links in
//! a UFO forest (swap in `LinkCutConnectivity` / `EulerConnectivity` to race
//! the backends) and repairs it with replacement edges whenever a tree link
//! fails.  A DSU-based offline oracle checks every reported component count.
//!
//! Run with: `cargo run --release --example network_monitoring`

use std::time::Instant;
use ufo_trees::connectivity::UfoConnectivity;
use ufo_trees::primitives::Dsu;
use ufo_trees::workloads::{churn_stream, road_grid_graph, StreamOp};
use ufo_trees::{BatchReport, GraphOp};

fn main() {
    let side = 60;
    let graph = road_grid_graph(side, 42);
    println!(
        "road network stand-in: {} vertices, {} links (full graph, cycles included)",
        graph.n,
        graph.edges.len()
    );

    // 20k failure/repair flips at ~90% link availability, with queries.
    let stream = churn_stream(&graph, 20_000, 0.9, 0.2, 99);
    let (ins, del, q) = stream.op_counts();
    println!(
        "edge stream: {} inserts, {} deletes, {} queries",
        ins, del, q
    );

    // The engine starts EMPTY; the stream's own AddVertices bootstrap grows
    // it.  Queries are answered between transactions, so each burst of
    // mutations becomes one `apply` with a full per-op outcome report.
    let mut engine = UfoConnectivity::new(0);
    let mut pending: Vec<GraphOp> = vec![GraphOp::AddVertices(stream.n)];
    let mut total = BatchReport::new(0, 0);
    let mut transactions = 0usize;
    let mut reachable = 0usize;
    let mut partitioned = 0usize;
    let start = Instant::now();
    {
        let mut flush = |engine: &mut UfoConnectivity, pending: &mut Vec<GraphOp>| {
            if pending.is_empty() {
                return;
            }
            let report = engine.apply(pending);
            total.applied += report.applied;
            total.skipped += report.skipped;
            total.rejected += report.rejected;
            total.vertices_after = report.vertices_after;
            total.components_after = report.components_after;
            transactions += 1;
            pending.clear();
        };
        for op in &stream.ops {
            match op.as_graph_op() {
                Some(g) => pending.push(g),
                None => {
                    let StreamOp::Query(a, b) = *op else {
                        unreachable!("only queries lack a GraphOp form")
                    };
                    flush(&mut engine, &mut pending);
                    if engine.connected(a, b) {
                        reachable += 1;
                    } else {
                        partitioned += 1;
                    }
                }
            }
        }
        flush(&mut engine, &mut pending);
    }
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "replayed {} ops as {} GraphOp transactions in {:.3}s ({:.0} ops/s) on the ufo backend",
        stream.len(),
        transactions,
        elapsed,
        stream.len() as f64 / elapsed,
    );
    println!(
        "aggregate report: {} applied, {} skipped, {} rejected | vertices 0 -> {} | components now {}",
        total.applied, total.skipped, total.rejected, total.vertices_after, total.components_after,
    );
    println!(
        "monitoring answers: {} reachable, {} partitioned pairs",
        reachable, partitioned
    );
    assert_eq!(
        total.rejected, 0,
        "a well-formed stream produces no rejected ops"
    );
    // every mutation is accounted for (plus the AddVertices bootstrap)
    assert_eq!(total.applied + total.skipped, ins + del + 1);

    // Rebuild the surviving edge set outside the timed window (bookkeeping
    // must not be billed to the engine).
    let mut live: std::collections::HashSet<(usize, usize)> = Default::default();
    for op in &stream.ops {
        match *op {
            StreamOp::Insert(u, v) => {
                live.insert((u, v));
            }
            StreamOp::Delete(u, v) => {
                live.remove(&(u, v));
            }
            StreamOp::Query(..) => {}
        }
    }

    // Verify the final component count against an offline DSU oracle.
    let mut dsu = Dsu::new(graph.n);
    for &(u, v) in &live {
        dsu.union(u, v);
    }
    let reported = engine.component_count();
    let expected = dsu.components();
    println!(
        "final state: {} live links, {} components (oracle: {}), spanning forest {} edges",
        live.len(),
        reported,
        expected,
        engine.spanning_forest_size(),
    );
    assert_eq!(reported, expected, "engine and oracle disagree");
    assert_eq!(
        total.components_after, expected,
        "BatchReport counters disagree with the oracle"
    );
    engine.check_invariants().expect("engine invariants");
    println!("component counts verified against the DSU oracle ✓");
}
