//! Network monitoring: maintain a spanning tree of a road-like network under
//! link failures and repairs while answering bottleneck path queries.
//!
//! This mirrors the motivation in the paper's introduction — dynamic trees as
//! the building block for connectivity and path queries over an evolving
//! network — and exercises the UFO forest against the link-cut baseline on the
//! same operation stream.
//!
//! Run with: `cargo run --release --example network_monitoring`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ufo_trees::workloads::{bfs_forest, road_grid_graph};
use ufo_trees::{LinkCutForest, UfoForest};

fn main() {
    let side = 60;
    let graph = road_grid_graph(side, 42);
    let forest = bfs_forest(&graph, 7);
    let n = forest.n;
    println!("road network stand-in: {} vertices, spanning forest of {} edges", n, forest.edges.len());

    let mut rng = StdRng::seed_from_u64(99);
    let mut ufo = UfoForest::new(n);
    let mut lct = LinkCutForest::new(n);
    for v in 0..n {
        let latency = rng.random_range(1..100);
        ufo.set_weight(v, latency);
        lct.set_weight(v, latency);
    }
    for &(u, v) in &forest.edges {
        ufo.link(u, v);
        lct.link(u, v);
    }

    // Simulate failures and repairs with interleaved path queries.
    let rounds = 2_000;
    let start = Instant::now();
    let mut agreement = 0;
    for _ in 0..rounds {
        let idx = rng.random_range(0..forest.edges.len());
        let (u, v) = forest.edges[idx];
        // fail the link, query, repair the link
        ufo.cut(u, v);
        lct.cut(u, v);
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        let ufo_answer = ufo.path_sum(a, b);
        let lct_answer = lct.path_sum(a, b);
        assert_eq!(ufo_answer, lct_answer, "structures disagree on path ({a},{b})");
        if ufo_answer.is_some() {
            agreement += 1;
        }
        ufo.link(u, v);
        lct.link(u, v);
    }
    println!(
        "{} failure/repair rounds with path queries in {:.3}s ({} queries answered, UFO and link-cut agree on all of them)",
        rounds,
        start.elapsed().as_secs_f64(),
        agreement
    );
    println!("network diameter (hops): {}", ufo.component_diameter(0));
}
