//! Network monitoring on a **live edge stream**: maintain connectivity of a
//! road-like network — the full cyclic graph, not a precomputed spanning
//! forest — under link failures and repairs, answering connectivity and
//! component-count questions while the stream flows.
//!
//! This is the workload the paper's dynamic trees exist to serve: the
//! `DynConnectivity` engine keeps a spanning forest of the surviving links in
//! a UFO forest (swap in `LinkCutConnectivity` / `EulerConnectivity` to race
//! the backends) and repairs it with replacement edges whenever a tree link
//! fails.  A DSU-based offline oracle checks every reported component count.
//!
//! Run with: `cargo run --release --example network_monitoring`

use std::time::Instant;
use ufo_trees::connectivity::UfoConnectivity;
use ufo_trees::primitives::Dsu;
use ufo_trees::workloads::{churn_stream, road_grid_graph, StreamOp};

fn main() {
    let side = 60;
    let graph = road_grid_graph(side, 42);
    println!(
        "road network stand-in: {} vertices, {} links (full graph, cycles included)",
        graph.n,
        graph.edges.len()
    );

    // 20k failure/repair flips at ~90% link availability, with queries.
    let stream = churn_stream(&graph, 20_000, 0.9, 0.2, 99);
    let (ins, del, q) = stream.op_counts();
    println!(
        "edge stream: {} inserts, {} deletes, {} queries",
        ins, del, q
    );

    let mut engine = UfoConnectivity::new(graph.n);
    let mut reachable = 0usize;
    let mut partitioned = 0usize;
    let start = Instant::now();
    for op in &stream.ops {
        match *op {
            StreamOp::Insert(u, v) => {
                engine.insert_edge(u, v);
            }
            StreamOp::Delete(u, v) => {
                engine.delete_edge(u, v);
            }
            StreamOp::Query(a, b) => {
                if engine.connected(a, b) {
                    reachable += 1;
                } else {
                    partitioned += 1;
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Rebuild the surviving edge set outside the timed window (bookkeeping
    // must not be billed to the engine).
    let mut live: std::collections::HashSet<(usize, usize)> = Default::default();
    for op in &stream.ops {
        match *op {
            StreamOp::Insert(u, v) => {
                live.insert((u, v));
            }
            StreamOp::Delete(u, v) => {
                live.remove(&(u, v));
            }
            StreamOp::Query(..) => {}
        }
    }
    println!(
        "replayed {} ops in {:.3}s ({:.0} ops/s) on the ufo backend",
        stream.len(),
        elapsed,
        stream.len() as f64 / elapsed,
    );
    println!(
        "monitoring answers: {} reachable, {} partitioned pairs",
        reachable, partitioned
    );

    // Verify the final component count against an offline DSU oracle.
    let mut dsu = Dsu::new(graph.n);
    for &(u, v) in &live {
        dsu.union(u, v);
    }
    let reported = engine.component_count();
    let expected = dsu.components();
    println!(
        "final state: {} live links, {} components (oracle: {}), spanning forest {} edges",
        live.len(),
        reported,
        expected,
        engine.spanning_forest_size(),
    );
    assert_eq!(reported, expected, "engine and oracle disagree");
    engine.check_invariants().expect("engine invariants");
    println!("component counts verified against the DSU oracle ✓");
}
