//! Network monitoring on a **live edge stream**, served through the
//! epoch-snapshot layer: one writer ingests link failures/repairs as
//! [`GraphOp`] transactions through a [`UfoServingEngine`] — every applied
//! batch publishes an immutable snapshot — while concurrent dashboard
//! threads answer reachability queries from `ReadHandle`s, each answer
//! stamped with the epoch it was read at.  Readers never lock the writer
//! and never see a half-applied transaction: they always read the last
//! *published* network state.
//!
//! This is the deployment shape the serving layer exists for (think a NOC:
//! one ingest pipeline, many live dashboards).  The spanning forest of the
//! surviving links lives in a UFO forest under the engine; a DSU-based
//! offline oracle checks the final component count, and the ring's
//! retention contract is demonstrated at the end — evicted epochs are a
//! typed `EpochRetired` refusal, never a silently wrong answer.
//!
//! Run with: `cargo run --release --example network_monitoring`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use ufo_trees::primitives::Dsu;
use ufo_trees::workloads::{churn_stream, road_grid_graph, StreamOp};
use ufo_trees::{GraphOp, UfoServingEngine};

fn main() {
    let side = 60;
    let graph = road_grid_graph(side, 42);
    println!(
        "road network stand-in: {} vertices, {} links (full graph, cycles included)",
        graph.n,
        graph.edges.len()
    );

    // 20k failure/repair flips at ~90% link availability, with queries.
    let stream = churn_stream(&graph, 20_000, 0.9, 0.2, 99);
    let (ins, del, q) = stream.op_counts();
    println!(
        "edge stream: {} inserts, {} deletes, {} queries",
        ins, del, q
    );

    // Split the stream: mutations become the writer's transactions (256 ops
    // each, every one publishing an epoch), the stream's query pairs become
    // the dashboards' sampling pool.
    let mut batches: Vec<Vec<GraphOp>> = vec![vec![GraphOp::AddVertices(stream.n)]];
    let mut queries: Vec<(usize, usize)> = Vec::new();
    for op in &stream.ops {
        match op.as_graph_op() {
            Some(g) => {
                if batches.last().is_some_and(|b| b.len() >= 256) {
                    batches.push(Vec::new());
                }
                batches.last_mut().expect("non-empty").push(g);
            }
            None => {
                let StreamOp::Query(a, b) = *op else {
                    unreachable!("only queries lack a GraphOp form")
                };
                queries.push((a, b));
            }
        }
    }

    let dashboards = 3usize;
    let mut serving = UfoServingEngine::new(0);
    let handle = serving.reader();
    let done = AtomicBool::new(false);

    let start = Instant::now();
    let (writer_totals, dashboard_stats) = std::thread::scope(|scope| {
        // each dashboard owns a cloned handle and a slice of the query pool,
        // and keeps re-sampling it until the writer publishes its last epoch
        let joins: Vec<_> = (0..dashboards)
            .map(|r| {
                let mut reader = handle.clone();
                let pool: Vec<(usize, usize)> = queries
                    .iter()
                    .copied()
                    .skip(r)
                    .step_by(dashboards)
                    .collect();
                let done = &done;
                scope.spawn(move || {
                    let (mut reachable, mut partitioned, mut served) = (0usize, 0usize, 0usize);
                    let mut latest_seen = 0u64;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        for &(a, b) in &pool {
                            let ans = reader.connected(a, b);
                            if ans.value {
                                reachable += 1;
                            } else {
                                partitioned += 1;
                            }
                            latest_seen = latest_seen.max(ans.epoch);
                            served += 1;
                        }
                        if finished {
                            // this pass ran against the settled final state
                            break;
                        }
                    }
                    (reachable, partitioned, served, latest_seen)
                })
            })
            .collect();

        // the writer: one transaction per batch, each publishing an epoch
        let (mut applied, mut skipped, mut rejected) = (0usize, 0usize, 0usize);
        let mut last = None;
        for batch in &batches {
            let report = serving.apply(batch);
            applied += report.applied;
            skipped += report.skipped;
            rejected += report.rejected;
            last = Some(report);
        }
        done.store(true, Ordering::Release);
        let stats: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        ((applied, skipped, rejected, last.expect("batches")), stats)
    });
    let elapsed = start.elapsed().as_secs_f64();

    let (applied, skipped, rejected, last_report) = writer_totals;
    println!(
        "writer: {} transactions -> {} epochs in {:.3}s ({:.0} ops/s incl. publication)",
        batches.len(),
        serving.latest_epoch(),
        elapsed,
        (ins + del + 1) as f64 / elapsed,
    );
    println!("last report: {last_report}");
    for (r, (reachable, partitioned, served, latest_seen)) in dashboard_stats.iter().enumerate() {
        println!(
            "dashboard {r}: {served} queries served concurrently \
             ({reachable} reachable, {partitioned} partitioned), newest epoch seen {latest_seen}",
        );
    }
    assert_eq!(rejected, 0, "a well-formed stream produces no rejected ops");
    // every mutation is accounted for (plus the AddVertices bootstrap)
    assert_eq!(applied + skipped, ins + del + 1);
    assert_eq!(
        last_report.version,
        serving.latest_epoch(),
        "the report's version IS the published epoch"
    );

    // Rebuild the surviving edge set and verify the final epoch against an
    // offline DSU oracle.
    let mut live: std::collections::HashSet<(usize, usize)> = Default::default();
    for op in &stream.ops {
        match *op {
            StreamOp::Insert(u, v) => {
                live.insert((u, v));
            }
            StreamOp::Delete(u, v) => {
                live.remove(&(u, v));
            }
            StreamOp::Query(..) => {}
        }
    }
    let mut dsu = Dsu::new(graph.n);
    for &(u, v) in &live {
        dsu.union(u, v);
    }
    let expected = dsu.components();
    let mut reader = serving.reader();
    let final_snap = reader.snapshot();
    println!(
        "final epoch {}: {} live links, {} components (oracle: {}), spanning forest {} edges",
        final_snap.epoch,
        live.len(),
        final_snap.components,
        expected,
        serving.engine().spanning_forest_size(),
    );
    assert_eq!(final_snap.components, expected, "snapshot vs oracle");
    assert_eq!(
        serving.engine().component_count(),
        expected,
        "engine vs oracle"
    );
    serving.check_invariants().expect("engine invariants");

    // Retention: the ring keeps the last K epochs; anything older is a typed
    // refusal, not a wrong answer.
    let oldest = serving.ring().oldest_retained();
    if oldest > 1 {
        let err = reader.at(1).unwrap_err();
        println!("pinning evicted epoch 1 -> {err}");
    }
    println!("component counts verified against the DSU oracle ✓");
}
